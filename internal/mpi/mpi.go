// Package mpi is an in-process message-passing runtime with MPI semantics,
// standing in for the Cray MPT / OpenMPI libraries of the paper. Ranks run
// as goroutines inside one World; point-to-point messages are matched on
// (source, tag) with MPI's non-overtaking order; nonblocking operations
// return Requests completed by Wait; and the usual collectives (Barrier,
// Allreduce, Gather) are built from the point-to-point layer with a binomial
// tree, as a real MPI would build them.
//
// Sends are buffered (eager): Send copies the payload and returns
// immediately, so the communication patterns of the paper — which post
// receives before sends precisely to be safe under rendezvous protocols —
// are deadlock-free here too. Functional correctness is this package's job;
// communication *cost* on the paper's machines is modeled separately by
// internal/perf.
package mpi

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// AnyTag matches any tag in Recv and IRecv.
const AnyTag = -1

// AnySource matches any source rank in Recv and IRecv.
const AnySource = -1

const collTagBase = 1 << 30 // internal tag space for collectives

// World owns the mailboxes of a fixed set of ranks.
type World struct {
	size   int
	boxes  []*mailbox
	barier *centralBarrier
}

// NewWorld creates a world of size ranks.
func NewWorld(size int) *World {
	if size < 1 {
		panic(fmt.Sprintf("mpi: world size %d < 1", size))
	}
	w := &World{size: size, boxes: make([]*mailbox, size), barier: newCentralBarrier(size)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Comm returns the communicator endpoint for rank. Each rank's Comm must be
// used by a single goroutine at a time.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, w.size))
	}
	return &Comm{world: w, rank: rank}
}

// Run executes fn concurrently on every rank and returns when all complete.
// A panic on any rank is re-panicked on the caller after all ranks have
// stopped or panicked, so tests fail loudly instead of deadlocking silently.
func (w *World) Run(fn func(c *Comm)) {
	var wg sync.WaitGroup
	panics := make(chan any, w.size)
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- fmt.Errorf("mpi: rank %d: %v", rank, p)
					w.barier.poison()
					for _, b := range w.boxes {
						b.poison()
					}
				}
			}()
			fn(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
}

// Comm is one rank's endpoint in a World.
type Comm struct {
	world   *World
	rank    int
	collSeq int
	stats   Stats
	rec     *obs.Recorder
	step    int
}

// Stats counts this rank's point-to-point traffic, excluding messages a
// rank sends to itself (which the paper's implementations shortcut in
// memory) but including collective-internal messages.
type Stats struct {
	SentMessages int
	SentValues   int
	RecvMessages int
	RecvValues   int
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Stats returns the traffic counters accumulated so far.
func (c *Comm) Stats() Stats { return c.stats }

// SetRecorder attaches a span recorder: Send, Recv, and Wait calls record
// mpi.* spans tagged with this rank and the step set by SetStep. A nil
// recorder (the default) disables recording. Like all Comm methods, it
// follows the one-goroutine-at-a-time contract.
func (c *Comm) SetRecorder(r *obs.Recorder) { c.rec = r }

// SetStep tags subsequently recorded spans with the given timestep.
// Use -1 (the initial value is 0) for traffic outside the step loop.
func (c *Comm) SetStep(step int) { c.step = step }

// Send delivers a copy of data to dst with the given tag and returns once
// the payload is buffered (eager protocol). Sending to self is legal.
func (c *Comm) Send(dst, tag int, data []float64) {
	c.checkTag(tag)
	c.send(dst, tag, data)
}

// send is the internal path shared with collectives, which use tags above
// the user tag space.
func (c *Comm) send(dst, tag int, data []float64) {
	c.checkRank(dst)
	a := c.rec.Begin(c.rank, c.step, obs.PhaseMPISend, "send")
	payload := make([]float64, len(data))
	copy(payload, data)
	c.world.boxes[dst].put(envelope{src: c.rank, tag: tag, data: payload})
	a.End()
	if dst != c.rank {
		c.stats.SentMessages++
		c.stats.SentValues += len(data)
	}
}

// Recv blocks until a message matching (src, tag) arrives, copies it into
// buf, and returns the number of values received. src may be AnySource and
// tag may be AnyTag. It panics if buf is too small, as a real MPI would
// report MPI_ERR_TRUNCATE.
func (c *Comm) Recv(src, tag int, buf []float64) int {
	if src != AnySource {
		c.checkRank(src)
	}
	a := c.rec.Begin(c.rank, c.step, obs.PhaseMPIRecv, "recv")
	e := c.world.boxes[c.rank].get(src, tag)
	a.End()
	if len(e.data) > len(buf) {
		panic(fmt.Sprintf("mpi: rank %d: truncation: %d values into %d buffer (src %d tag %d)",
			c.rank, len(e.data), len(buf), e.src, e.tag))
	}
	copy(buf, e.data)
	if e.src != c.rank {
		c.stats.RecvMessages++
		c.stats.RecvValues += len(e.data)
	}
	return len(e.data)
}

// Request is a handle to a nonblocking operation, completed by Wait.
type Request struct {
	done  bool
	count int
	wait  func() int
}

// Wait blocks until the operation completes and returns the received value
// count (0 for sends). Wait is idempotent.
func (r *Request) Wait() int {
	if !r.done {
		r.count = r.wait()
		r.done = true
		r.wait = nil
	}
	return r.count
}

// Done reports whether the request has already completed via Wait.
func (r *Request) Done() bool { return r.done }

// ISend starts a nonblocking send. Under the eager protocol the payload is
// buffered immediately, so the returned request is already complete and the
// caller may reuse data at once — matching the semantics (not the cost) of
// MPI_Isend on the paper's machines.
func (c *Comm) ISend(dst, tag int, data []float64) *Request {
	c.Send(dst, tag, data)
	return &Request{done: true}
}

// IRecv posts a nonblocking receive into buf. The match is performed when
// Wait is called; buf must not be read before Wait returns.
func (c *Comm) IRecv(src, tag int, buf []float64) *Request {
	if src != AnySource {
		c.checkRank(src)
	}
	c.checkTagOrAny(tag)
	return &Request{wait: func() int {
		a := c.rec.Begin(c.rank, c.step, obs.PhaseMPIWait, "irecv")
		n := c.Recv(src, tag, buf)
		a.End()
		return n
	}}
}

// Waitall completes every request.
func Waitall(reqs []*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}

// Barrier blocks until every rank in the world has entered it.
func (c *Comm) Barrier() {
	c.world.barier.wait()
}

// ReduceOp names an Allreduce combining operation.
type ReduceOp int

const (
	// OpSum sums elementwise.
	OpSum ReduceOp = iota
	// OpMax takes the elementwise maximum.
	OpMax
	// OpMin takes the elementwise minimum.
	OpMin
)

// Allreduce combines vals elementwise across all ranks with op and leaves
// the result in vals on every rank. It is implemented as a binomial-tree
// reduction to rank 0 followed by a binomial broadcast. All ranks must call
// it in the same order, the usual MPI collective contract.
func (c *Comm) Allreduce(op ReduceOp, vals []float64) {
	tag := c.nextCollTag()
	size, rank := c.Size(), c.rank
	tmp := make([]float64, len(vals))
	// Reduce to rank 0.
	for step := 1; step < size; step <<= 1 {
		if rank&step != 0 {
			c.send(rank-step, tag, vals)
			break
		}
		if rank+step < size {
			c.Recv(rank+step, tag, tmp)
			combine(op, vals, tmp)
		}
	}
	// Broadcast from rank 0, mirroring the reduction tree.
	c.bcastTree(tag+1, vals)
}

// Bcast broadcasts root's vals to every rank (in place on non-roots).
func (c *Comm) Bcast(root int, vals []float64) {
	c.checkRank(root)
	tag := c.nextCollTag()
	if root != 0 {
		// Rotate so the tree math can assume root 0.
		if c.rank == root {
			c.send(0, tag, vals)
		}
		if c.rank == 0 {
			c.Recv(root, tag, vals)
		}
	}
	c.bcastTree(tag+1, vals)
}

func (c *Comm) bcastTree(tag int, vals []float64) {
	size, rank := c.Size(), c.rank
	// Find the highest step at which this rank receives.
	mask := 1
	for mask < size {
		mask <<= 1
	}
	for step := mask >> 1; step >= 1; step >>= 1 {
		if rank&(step-1) == 0 { // participant at this level
			if rank&step != 0 {
				c.Recv(rank-step, tag, vals)
			} else if rank+step < size {
				c.send(rank+step, tag, vals)
			}
		}
	}
}

// Reduce combines vals elementwise across all ranks with op, leaving the
// result in vals on root only (other ranks' vals are left partially
// combined and should not be used, as with MPI_Reduce).
func (c *Comm) Reduce(root int, op ReduceOp, vals []float64) {
	c.checkRank(root)
	tag := c.nextCollTag()
	size, rank := c.Size(), c.rank
	// Rotate ranks so the binomial tree roots at `root`.
	rel := (rank - root + size) % size
	tmp := make([]float64, len(vals))
	for step := 1; step < size; step <<= 1 {
		if rel&step != 0 {
			c.send((rel-step+root)%size, tag, vals)
			return
		}
		if rel+step < size {
			c.Recv((rel+step+root)%size, tag, tmp)
			combine(op, vals, tmp)
		}
	}
}

// Allgather concatenates every rank's send slice, ordered by rank, on all
// ranks. All slices must have the same length (MPI_Allgather).
func (c *Comm) Allgather(send []float64) []float64 {
	tag := c.nextCollTag()
	size, rank := c.Size(), c.rank
	out := make([]float64, len(send)*size)
	copy(out[rank*len(send):], send)
	// Simple ring: everyone sends to everyone (worlds are small here).
	for r := 0; r < size; r++ {
		if r == rank {
			continue
		}
		c.send(r, tag, send)
	}
	buf := make([]float64, len(send))
	for r := 0; r < size; r++ {
		if r == rank {
			continue
		}
		c.Recv(r, tag, buf)
		copy(out[r*len(send):], buf)
	}
	return out
}

// Gather collects each rank's send slice at root. On root it returns one
// slice per rank (index = rank); on other ranks it returns nil. Slices may
// have different lengths (MPI_Gatherv).
func (c *Comm) Gather(root int, send []float64) [][]float64 {
	c.checkRank(root)
	tag := c.nextCollTag()
	if c.rank != root {
		c.send(root, tag, send)
		return nil
	}
	out := make([][]float64, c.Size())
	for r := 0; r < c.Size(); r++ {
		if r == root {
			out[r] = append([]float64(nil), send...)
			continue
		}
		e := c.world.boxes[c.rank].get(r, tag)
		out[r] = e.data
	}
	return out
}

func combine(op ReduceOp, dst, src []float64) {
	switch op {
	case OpSum:
		for i := range dst {
			dst[i] += src[i]
		}
	case OpMax:
		for i := range dst {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	case OpMin:
		for i := range dst {
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	default:
		panic(fmt.Sprintf("mpi: bad reduce op %d", int(op)))
	}
}

func (c *Comm) nextCollTag() int {
	t := collTagBase + 2*c.collSeq
	c.collSeq++
	return t
}

func (c *Comm) checkRank(r int) {
	if r < 0 || r >= c.world.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", r, c.world.size))
	}
}

func (c *Comm) checkTag(tag int) {
	if tag < 0 || tag >= collTagBase {
		panic(fmt.Sprintf("mpi: tag %d out of range [0,%d)", tag, collTagBase))
	}
}

func (c *Comm) checkTagOrAny(tag int) {
	if tag != AnyTag {
		c.checkTag(tag)
	}
}
