package mpi_test

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/mpi"
)

// Example shows the halo-exchange idiom the paper's implementations use:
// post nonblocking receives first, send eagerly, then wait — here on a
// two-rank ring.
func Example() {
	w := mpi.NewWorld(2)
	var mu sync.Mutex
	var lines []string
	w.Run(func(c *mpi.Comm) {
		peer := 1 - c.Rank()
		recv := make([]float64, 1)
		req := c.IRecv(peer, 0, recv)
		c.ISend(peer, 0, []float64{float64(c.Rank() * 10)})
		req.Wait()
		mu.Lock()
		lines = append(lines, fmt.Sprintf("rank %d received %v", c.Rank(), recv[0]))
		mu.Unlock()
	})
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	// Output:
	// rank 0 received 10
	// rank 1 received 0
}

// ExampleComm_Allreduce computes a global sum the way the distributed norm
// verification does.
func ExampleComm_Allreduce() {
	w := mpi.NewWorld(4)
	var once sync.Once
	w.Run(func(c *mpi.Comm) {
		vals := []float64{float64(c.Rank() + 1)}
		c.Allreduce(mpi.OpSum, vals)
		once.Do(func() { fmt.Println("sum over ranks:", vals[0]) })
	})
	// Output:
	// sum over ranks: 10
}

// ExampleCart builds the Cartesian topology of the paper's decomposition
// and walks one periodic ring.
func ExampleCart() {
	w := mpi.NewWorld(6)
	var once sync.Once
	w.Run(func(c *mpi.Comm) {
		ct, err := mpi.NewCart(c, []int{2, 3}, []bool{true, true})
		if err != nil {
			fmt.Println(err)
			return
		}
		if c.Rank() == 0 {
			src, dst := ct.Shift(1, 1) // +y neighbor ring
			once.Do(func() { fmt.Printf("rank 0 shift(+y): src=%d dst=%d\n", src, dst) })
		}
	})
	// Output:
	// rank 0 shift(+y): src=4 dst=2
}
