package mpi

import "testing"

func TestCartCoordsRoundTrip(t *testing.T) {
	w := NewWorld(24)
	w.Run(func(c *Comm) {
		ct, err := NewCart(c, []int{2, 3, 4}, []bool{true, true, true})
		if err != nil {
			t.Error(err)
			return
		}
		if got := ct.Rank(ct.Coords()); got != c.Rank() {
			t.Errorf("rank %d: Rank(Coords()) = %d", c.Rank(), got)
		}
	})
}

func TestCartPeriodicShift(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		ct, err := NewCart(c, []int{4}, []bool{true})
		if err != nil {
			t.Error(err)
			return
		}
		src, dst := ct.Shift(0, 1)
		wantDst := (c.Rank() + 1) % 4
		wantSrc := (c.Rank() + 3) % 4
		if dst != wantDst || src != wantSrc {
			t.Errorf("rank %d: shift = (%d,%d), want (%d,%d)", c.Rank(), src, dst, wantSrc, wantDst)
		}
	})
}

func TestCartNonPeriodicEdge(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		ct, err := NewCart(c, []int{3}, []bool{false})
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 2 {
			if n := ct.Neighbor(0, 1); n != -1 {
				t.Errorf("edge rank has +1 neighbor %d, want -1", n)
			}
		}
		if c.Rank() == 0 {
			if n := ct.Neighbor(0, -1); n != -1 {
				t.Errorf("edge rank has -1 neighbor %d, want -1", n)
			}
		}
	})
}

func TestCartErrors(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		if _, err := NewCart(c, []int{3}, []bool{true}); err == nil {
			t.Error("wrong volume accepted")
		}
		if _, err := NewCart(c, []int{2, 2}, []bool{true}); err == nil {
			t.Error("arity mismatch accepted")
		}
		if _, err := NewCart(c, []int{0, 4}, []bool{true, true}); err == nil {
			t.Error("zero dimension accepted")
		}
	})
}

func TestCartRingExchange(t *testing.T) {
	// The classic ring: every rank sends its rank value right and
	// receives its left neighbor's via Sendrecv.
	w := NewWorld(5)
	w.Run(func(c *Comm) {
		ct, err := NewCart(c, []int{5}, []bool{true})
		if err != nil {
			t.Error(err)
			return
		}
		src, dst := ct.Shift(0, 1)
		recv := make([]float64, 1)
		n := c.Sendrecv(dst, 0, []float64{float64(c.Rank())}, src, 0, recv)
		if n != 1 || recv[0] != float64((c.Rank()+4)%5) {
			t.Errorf("rank %d: got %v from %d", c.Rank(), recv, src)
		}
	})
}

func TestSendrecvProcNull(t *testing.T) {
	// Sendrecv with both peers MPI_PROC_NULL is a no-op.
	w := NewWorld(1)
	w.Run(func(c *Comm) {
		if n := c.Sendrecv(-1, 0, []float64{1}, -1, 0, make([]float64, 1)); n != 0 {
			t.Errorf("proc-null sendrecv returned %d", n)
		}
	})
}

func TestCartMatchesDecompNeighbors(t *testing.T) {
	// The Cart topology and the grid decomposition must agree on the
	// neighbor structure for the paper's x-fastest rank order.
	w := NewWorld(12)
	w.Run(func(c *Comm) {
		ct, err := NewCart(c, []int{2, 2, 3}, []bool{true, true, true})
		if err != nil {
			t.Error(err)
			return
		}
		// Hand-computed spot checks for rank layout x-fastest.
		if c.Rank() == 0 {
			if n := ct.Neighbor(0, 1); n != 1 {
				t.Errorf("x+ neighbor of 0 = %d, want 1", n)
			}
			if n := ct.Neighbor(1, 1); n != 2 {
				t.Errorf("y+ neighbor of 0 = %d, want 2", n)
			}
			if n := ct.Neighbor(2, 1); n != 4 {
				t.Errorf("z+ neighbor of 0 = %d, want 4", n)
			}
		}
	})
}

func TestCartDimsCopied(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		dims := []int{2}
		ct, err := NewCart(c, dims, []bool{true})
		if err != nil {
			t.Error(err)
			return
		}
		dims[0] = 99
		if ct.Dims()[0] != 2 {
			t.Error("Cart aliased caller's dims")
		}
		got := ct.Dims()
		got[0] = 77
		if ct.Dims()[0] != 2 {
			t.Error("Dims exposes internal state")
		}
	})
}
