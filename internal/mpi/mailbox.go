package mpi

import "sync"

// envelope is one in-flight message.
type envelope struct {
	src  int
	tag  int
	data []float64
}

// mailbox is a rank's incoming-message queue with MPI matching: a receive
// takes the earliest-arrived message whose (source, tag) matches, which
// preserves MPI's non-overtaking guarantee between a sender/receiver pair.
type mailbox struct {
	mu       sync.Mutex
	cond     *sync.Cond
	q        []envelope
	poisoned bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(e envelope) {
	m.mu.Lock()
	m.q = append(m.q, e)
	m.cond.Broadcast()
	m.mu.Unlock()
}

// get blocks until a message matching (src, tag) is available and removes
// it. src may be AnySource and tag may be AnyTag.
func (m *mailbox) get(src, tag int) envelope {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, e := range m.q {
			if (src == AnySource || e.src == src) && (tag == AnyTag || e.tag == tag) {
				m.q = append(m.q[:i], m.q[i+1:]...)
				return e
			}
		}
		if m.poisoned {
			panic("mpi: world poisoned by a peer rank's panic")
		}
		m.cond.Wait()
	}
}

// poison wakes all blocked receivers with a panic so a rank failure cannot
// deadlock the world.
func (m *mailbox) poison() {
	m.mu.Lock()
	m.poisoned = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// centralBarrier is a reusable counting barrier over all ranks of a World.
type centralBarrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	parties  int
	count    int
	gen      uint64
	poisoned bool
}

func newCentralBarrier(parties int) *centralBarrier {
	b := &centralBarrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *centralBarrier) wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		panic("mpi: world poisoned by a peer rank's panic")
	}
	gen := b.gen
	b.count++
	if b.count == b.parties {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen && !b.poisoned {
		b.cond.Wait()
	}
	if b.poisoned && gen == b.gen {
		panic("mpi: world poisoned by a peer rank's panic")
	}
}

func (b *centralBarrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
