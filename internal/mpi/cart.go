package mpi

import "fmt"

// Cart is a Cartesian process topology over a communicator, the analog of
// MPI_Cart_create for the paper's aligned three-dimensional decomposition:
// ranks are arranged on a periodic grid and neighbor lookup follows
// MPI_Cart_shift semantics. The paper's subdomains "are aligned in each
// dimension, so each MPI task has 26 neighbors", reached through shifts in
// the three axis directions.
type Cart struct {
	comm     *Comm
	dims     []int
	periodic []bool
	coords   []int
}

// NewCart builds the topology for this rank. The product of dims must
// equal the world size (every rank is placed). Rank order is x-fastest,
// the layout the paper's decomposition uses.
func NewCart(c *Comm, dims []int, periodic []bool) (*Cart, error) {
	if len(dims) == 0 || len(dims) != len(periodic) {
		return nil, fmt.Errorf("mpi: cart dims/periodic mismatch: %v vs %v", dims, periodic)
	}
	vol := 1
	for _, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("mpi: cart dimension %d < 1", d)
		}
		vol *= d
	}
	if vol != c.Size() {
		return nil, fmt.Errorf("mpi: cart volume %d != world size %d", vol, c.Size())
	}
	ct := &Cart{
		comm:     c,
		dims:     append([]int(nil), dims...),
		periodic: append([]bool(nil), periodic...),
		coords:   make([]int, len(dims)),
	}
	r := c.Rank()
	for i := range dims {
		ct.coords[i] = r % dims[i]
		r /= dims[i]
	}
	return ct, nil
}

// Comm returns the underlying communicator.
func (ct *Cart) Comm() *Comm { return ct.comm }

// Dims returns the topology extents.
func (ct *Cart) Dims() []int { return append([]int(nil), ct.dims...) }

// Coords returns this rank's grid coordinates.
func (ct *Cart) Coords() []int { return append([]int(nil), ct.coords...) }

// Rank returns the rank at the given coordinates, applying periodic
// wrapping where the dimension is periodic. It returns -1 (the analog of
// MPI_PROC_NULL) if a non-periodic coordinate is out of range.
func (ct *Cart) Rank(coords []int) int {
	if len(coords) != len(ct.dims) {
		panic(fmt.Sprintf("mpi: cart coords %v have wrong arity", coords))
	}
	rank := 0
	stride := 1
	for i, v := range coords {
		d := ct.dims[i]
		if v < 0 || v >= d {
			if !ct.periodic[i] {
				return -1
			}
			v = ((v % d) + d) % d
		}
		rank += v * stride
		stride *= d
	}
	return rank
}

// Shift returns the source and destination ranks of an MPI_Cart_shift by
// disp along dim: src is the neighbor whose data arrives here when
// everyone sends in the +disp direction, dst is where this rank's data
// goes. Either may be -1 on a non-periodic edge.
func (ct *Cart) Shift(dim, disp int) (src, dst int) {
	if dim < 0 || dim >= len(ct.dims) {
		panic(fmt.Sprintf("mpi: cart shift dim %d out of range", dim))
	}
	up := append([]int(nil), ct.coords...)
	up[dim] += disp
	dst = ct.Rank(up)
	down := append([]int(nil), ct.coords...)
	down[dim] -= disp
	src = ct.Rank(down)
	return src, dst
}

// Neighbor returns the rank one step along dim in direction dir (±1),
// the lookup the halo exchange performs.
func (ct *Cart) Neighbor(dim, dir int) int {
	_, dst := ct.Shift(dim, dir)
	return dst
}

// Sendrecv performs a combined send and receive (MPI_Sendrecv): it sends
// sendBuf to dst with sendTag and receives into recvBuf from src with
// recvTag, returning the received count. Either peer may be -1
// (MPI_PROC_NULL), in which case that half is skipped and the received
// count is 0.
func (c *Comm) Sendrecv(dst, sendTag int, sendBuf []float64, src, recvTag int, recvBuf []float64) int {
	var req *Request
	if src >= 0 {
		req = c.IRecv(src, recvTag, recvBuf)
	}
	if dst >= 0 {
		c.Send(dst, sendTag, sendBuf)
	}
	if req == nil {
		return 0
	}
	return req.Wait()
}
