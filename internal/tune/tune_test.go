package tune

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

func TestExhaustiveFindsFeasible(t *testing.T) {
	yona := machine.Yona()
	for _, k := range []core.Kind{core.BulkSync, core.GPUStreams, core.HybridOverlap} {
		r, err := Exhaustive(yona, k, 48, DefaultSpace(yona, k))
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if r.GF <= 0 || r.Evaluations == 0 {
			t.Fatalf("%v: empty result %+v", k, r)
		}
	}
}

func TestCoordinateDescentNearExhaustive(t *testing.T) {
	// The greedy search must find at least 95% of the exhaustive optimum
	// on every machine/implementation pair, with fewer evaluations when
	// the space is non-trivial.
	cases := []struct {
		m     *machine.Machine
		kind  core.Kind
		cores int
	}{
		{machine.JaguarPF(), core.BulkSync, 1536},
		{machine.HopperII(), core.NonblockingOverlap, 6144},
		{machine.Lens(), core.HybridOverlap, 128},
		{machine.Yona(), core.HybridOverlap, 96},
		{machine.Yona(), core.GPUStreams, 48},
	}
	for _, c := range cases {
		space := DefaultSpace(c.m, c.kind)
		ex, err := Exhaustive(c.m, c.kind, c.cores, space)
		if err != nil {
			t.Fatalf("%s/%v: %v", c.m.Name, c.kind, err)
		}
		cd, err := CoordinateDescent(c.m, c.kind, c.cores, space)
		if err != nil {
			t.Fatalf("%s/%v: %v", c.m.Name, c.kind, err)
		}
		if cd.GF < 0.95*ex.GF {
			t.Fatalf("%s/%v: greedy %.1f GF < 95%% of exhaustive %.1f GF (%v vs %v)",
				c.m.Name, c.kind, cd.GF, ex.GF, cd.Best, ex.Best)
		}
	}
}

func TestCoordinateDescentCheaper(t *testing.T) {
	yona := machine.Yona()
	space := DefaultSpace(yona, core.HybridOverlap)
	ex, _ := Exhaustive(yona, core.HybridOverlap, 96, space)
	cd, _ := CoordinateDescent(yona, core.HybridOverlap, 96, space)
	if cd.Evaluations >= ex.Evaluations {
		t.Fatalf("greedy used %d evaluations, exhaustive %d", cd.Evaluations, ex.Evaluations)
	}
}

func TestDefaultSpaceShape(t *testing.T) {
	yona := machine.Yona()
	cpu := DefaultSpace(yona, core.BulkSync)
	if len(cpu.Thickness) != 1 || len(cpu.BlockX) != 1 {
		t.Fatal("CPU space should not sweep GPU or thickness axes")
	}
	hyb := DefaultSpace(yona, core.HybridOverlap)
	if len(hyb.Thickness) < 3 || len(hyb.BlockX) < 2 {
		t.Fatal("hybrid space should sweep thickness and blocks")
	}
}

func TestBuildSchedule(t *testing.T) {
	yona := machine.Yona()
	sched, err := BuildSchedule(yona, core.HybridOverlap, []int{12, 48, 192})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Entries) != 3 {
		t.Fatalf("%d entries", len(sched.Entries))
	}
	// The paper's Fig 12 finding: thin boxes and few tasks per node.
	for _, e := range sched.Entries {
		if e.Point.Thickness > 3 {
			t.Fatalf("cores=%d: tuned thickness %d, expected a thin veneer", e.Cores, e.Point.Thickness)
		}
		if e.GF <= 0 {
			t.Fatalf("cores=%d: no GF", e.Cores)
		}
	}
	// Tuned throughput rises with scale over this range.
	if !(sched.Entries[0].GF < sched.Entries[1].GF && sched.Entries[1].GF < sched.Entries[2].GF) {
		t.Fatal("tuned GF not increasing with cores")
	}
}

func TestInfeasibleSpace(t *testing.T) {
	yona := machine.Yona()
	bad := Space{Threads: []int{5}, Thickness: []int{1}, BlockX: []int{32}, BlockY: []int{8}}
	if _, err := Exhaustive(yona, core.BulkSync, 12, bad); err == nil {
		t.Fatal("infeasible space accepted") // 12 % 5 != 0
	}
	if _, err := CoordinateDescent(yona, core.BulkSync, 12, bad); err == nil {
		t.Fatal("infeasible space accepted")
	}
}

func TestPointString(t *testing.T) {
	p := Point{Threads: 6, Thickness: 1, BlockX: 32, BlockY: 8}
	if p.String() != "threads=6 thickness=1 block=32x8" {
		t.Fatalf("String = %q", p.String())
	}
}
