// Package tune implements the automatic tuning the paper's conclusions
// call for (§VI): searching the space of OpenMP threads per MPI task, CPU
// box thickness, and GPU thread-block size for the best configuration of
// an implementation on a machine at a given scale. The paper notes these
// parameters interact ("the thickness of the CPU box partition ... can
// itself depend on the number of threads per task") and vary with the
// strong-scaling local domain size; the tuner searches the joint space.
//
// Two strategies are provided: Exhaustive, which sweeps the whole space
// (the paper's own methodology — "a suite of runs ... that spans the space
// of various tuning parameters"), and CoordinateDescent, a cheap greedy
// search that tunes one parameter at a time and converges in a small
// fraction of the evaluations, the kind of search an auto-tuner would run
// online.
package tune

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/perf"
)

// Point is one configuration in the tuning space.
type Point struct {
	Threads   int
	Thickness int
	BlockX    int
	BlockY    int
}

func (p Point) String() string {
	return fmt.Sprintf("threads=%d thickness=%d block=%dx%d",
		p.Threads, p.Thickness, p.BlockX, p.BlockY)
}

// Space is the set of candidate values per parameter.
type Space struct {
	Threads   []int
	Thickness []int
	BlockX    []int
	BlockY    []int
}

// DefaultSpace returns the space the paper sweeps for the given machine
// and implementation: the machine's thread choices, the box thicknesses of
// Figures 11-12 (hybrid implementations only), and the block sizes of
// Figures 7-8 (GPU implementations only).
func DefaultSpace(m *machine.Machine, kind core.Kind) Space {
	s := Space{
		Threads:   append([]int(nil), m.ThreadChoices...),
		Thickness: []int{1},
		BlockX:    []int{32},
		BlockY:    []int{8},
	}
	if kind == core.HybridBulkSync || kind == core.HybridOverlap {
		s.Thickness = []int{1, 2, 3, 5, 8, 12}
	}
	if kind.UsesGPU() {
		s.BlockX = []int{16, 32, 64}
		s.BlockY = []int{4, 8, 11, 13, 16}
	}
	return s
}

// Result reports a completed search.
type Result struct {
	Best        Point
	GF          float64
	Evaluations int
}

// objective evaluates one point; invalid points return ok=false.
func objective(m *machine.Machine, kind core.Kind, cores int, p Point) (float64, bool) {
	if p.Threads <= 0 || cores%p.Threads != 0 {
		return 0, false
	}
	e, err := perf.Evaluate(perf.Config{
		M: m, Kind: kind, Cores: cores, Threads: p.Threads,
		BoxThickness: p.Thickness, BlockX: p.BlockX, BlockY: p.BlockY,
	})
	if err != nil {
		return 0, false
	}
	return e.GF, true
}

// Exhaustive sweeps the full space.
func Exhaustive(m *machine.Machine, kind core.Kind, cores int, s Space) (Result, error) {
	var res Result
	for _, t := range s.Threads {
		for _, w := range s.Thickness {
			for _, bx := range s.BlockX {
				for _, by := range s.BlockY {
					p := Point{Threads: t, Thickness: w, BlockX: bx, BlockY: by}
					gf, ok := objective(m, kind, cores, p)
					res.Evaluations++
					if ok && gf > res.GF {
						res.GF = gf
						res.Best = p
					}
				}
			}
		}
	}
	if res.GF == 0 {
		return res, fmt.Errorf("tune: no feasible configuration for %v on %s at %d cores",
			kind, m.Name, cores)
	}
	return res, nil
}

// CoordinateDescent tunes one parameter at a time, repeating passes until
// no parameter improves — a greedy search that typically needs a small
// fraction of the exhaustive evaluations. It is restarted from every
// thread choice (the thread axis has the strongest interactions), keeping
// the best outcome.
func CoordinateDescent(m *machine.Machine, kind core.Kind, cores int, s Space) (Result, error) {
	var best Result
	evals := 0
	eval := func(p Point) (float64, bool) {
		evals++
		return objective(m, kind, cores, p)
	}

	for _, startT := range s.Threads {
		cur := Point{
			Threads:   startT,
			Thickness: s.Thickness[0],
			BlockX:    s.BlockX[0],
			BlockY:    s.BlockY[0],
		}
		curGF, ok := eval(cur)
		if !ok {
			continue
		}
		for improved := true; improved; {
			improved = false
			axes := []struct {
				vals []int
				set  func(*Point, int)
				get  func(Point) int
			}{
				{s.Thickness, func(p *Point, v int) { p.Thickness = v }, func(p Point) int { return p.Thickness }},
				{s.BlockX, func(p *Point, v int) { p.BlockX = v }, func(p Point) int { return p.BlockX }},
				{s.BlockY, func(p *Point, v int) { p.BlockY = v }, func(p Point) int { return p.BlockY }},
				{s.Threads, func(p *Point, v int) { p.Threads = v }, func(p Point) int { return p.Threads }},
			}
			for _, ax := range axes {
				for _, v := range ax.vals {
					if v == ax.get(cur) {
						continue
					}
					cand := cur
					ax.set(&cand, v)
					if gf, ok := eval(cand); ok && gf > curGF {
						cur, curGF = cand, gf
						improved = true
					}
				}
			}
		}
		if curGF > best.GF {
			best.GF = curGF
			best.Best = cur
		}
	}
	best.Evaluations = evals
	if best.GF == 0 {
		return best, fmt.Errorf("tune: no feasible configuration for %v on %s at %d cores",
			kind, m.Name, cores)
	}
	return best, nil
}

// Schedule is a tuned configuration per core count — what an auto-tuned
// production run would install.
type Schedule struct {
	Machine string
	Kind    core.Kind
	Entries []ScheduleEntry
}

// ScheduleEntry is the tuned point for one core count.
type ScheduleEntry struct {
	Cores int
	Point Point
	GF    float64
}

// BuildSchedule tunes every core count with coordinate descent.
func BuildSchedule(m *machine.Machine, kind core.Kind, coreCounts []int) (Schedule, error) {
	sched := Schedule{Machine: m.Name, Kind: kind}
	s := DefaultSpace(m, kind)
	for _, cores := range coreCounts {
		r, err := CoordinateDescent(m, kind, cores, s)
		if err != nil {
			return sched, err
		}
		sched.Entries = append(sched.Entries, ScheduleEntry{Cores: cores, Point: r.Best, GF: r.GF})
	}
	return sched, nil
}
