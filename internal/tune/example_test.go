package tune_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/tune"
)

// Example tunes the paper's winning implementation on one Yona node, the
// search §VI says future systems will need.
func Example() {
	yona := machine.Yona()
	space := tune.DefaultSpace(yona, core.HybridOverlap)
	r, err := tune.CoordinateDescent(yona, core.HybridOverlap, 12, space)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("one task per node:", yona.Node.Cores()/r.Best.Threads == 1)
	fmt.Println("thin CPU veneer:", r.Best.Thickness <= 3)
	fmt.Println("warp-width blocks:", r.Best.BlockX == 32)
	// Output:
	// one task per node: true
	// thin CPU veneer: true
	// warp-width blocks: true
}
