package session

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/grid"
	_ "repro/internal/impl"
)

// realRunner executes segments through the implementation registry, the
// way the serving layer wires the manager.
func realRunner() Runner {
	return func(ctx context.Context, kind core.Kind, p core.Problem, o core.Options) (*core.Result, error) {
		r, err := core.New(kind)
		if err != nil {
			return nil, err
		}
		o.Ctx = ctx
		return r.Run(p, o)
	}
}

// gatedRunner wraps a runner so each segment must be released through the
// gate (or cancelled), making mid-run pauses and shutdowns deterministic.
func gatedRunner(inner Runner, gate chan struct{}) Runner {
	return func(ctx context.Context, kind core.Kind, p core.Problem, o core.Options) (*core.Result, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return inner(ctx, kind, p, o)
	}
}

func testScenario(steps, segment int) Scenario {
	return Scenario{
		Kind:    core.SingleTask,
		Problem: core.DefaultProblem(8, steps),
		Segment: segment,
	}
}

func newTestManager(t *testing.T, dir string, run Runner, notify func(Event)) *Manager {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{Store: st, Run: run, Notify: notify})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func waitState(t *testing.T, s *Session, want State) {
	t.Helper()
	waitFor(t, string(want), func() bool { return s.State() == want })
}

func TestScenarioFingerprint(t *testing.T) {
	sc := testScenario(20, 5)
	if got, want := sc.Fingerprint(), core.Fingerprint(sc.Kind, sc.Problem, sc.Options); got != want {
		t.Fatalf("root fingerprint %s, want canonical %s", got, want)
	}
	fork := sc
	fork.ParentFP = sc.Fingerprint()
	fork.ParentStep = 10
	if fork.Fingerprint() == sc.Fingerprint() {
		t.Fatal("fork fingerprint must differ from root")
	}
	fork2 := fork
	fork2.ParentStep = 15
	if fork2.Fingerprint() == fork.Fingerprint() {
		t.Fatal("fork point must be part of the identity")
	}
}

func TestManagerRunsToCompletion(t *testing.T) {
	var mu sync.Mutex
	var events []string
	m := newTestManager(t, t.TempDir(), realRunner(), func(e Event) {
		mu.Lock()
		events = append(events, e.Type)
		mu.Unlock()
	})
	s, err := m.Create(testScenario(20, 6))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, StateDone)
	v := s.View()
	if v.DoneSteps != 20 || v.TotalSteps != 20 || v.Segments != 4 || v.LastCheckpoint != 20 {
		t.Fatalf("final view wrong: %+v", v)
	}
	if v.FieldHash == "" {
		t.Fatal("no field hash recorded")
	}
	// Retention: the default keeps 4 checkpoints; 4 segments landed 4.
	if steps := m.cfg.Store.Steps(s.Fingerprint()); len(steps) != 4 || steps[3] != 20 {
		t.Fatalf("retained steps %v", steps)
	}
	mu.Lock()
	defer mu.Unlock()
	segs, dones := 0, 0
	for _, e := range events {
		switch e {
		case EventSegment:
			segs++
		case EventDone:
			dones++
		}
	}
	if events[0] != EventCreated || segs != 4 || dones != 1 {
		t.Fatalf("event stream wrong: %v", events)
	}
	st := m.Stats()
	if st.Done != 1 || st.Created != 1 || st.Segments != 4 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

func TestManagerPauseResume(t *testing.T) {
	gate := make(chan struct{}, 16)
	m := newTestManager(t, t.TempDir(), gatedRunner(realRunner(), gate), nil)
	s, err := m.Create(testScenario(20, 5))
	if err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{} // first segment
	waitFor(t, "first segment", func() bool { return s.Done() == 5 })
	// The loop is now blocked in the gated second segment (or about to
	// be); pause cancels it and rolls back to the durable step 5.
	if err := m.Pause(s.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, StatePaused)
	if got := s.Done(); got != 5 {
		t.Fatalf("paused at %d steps, want the durable 5", got)
	}
	if err := m.Pause(s.ID()); err == nil {
		t.Fatal("pausing a paused session must fail")
	}
	for i := 0; i < 8; i++ {
		gate <- struct{}{}
	}
	if err := m.Resume(s.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, StateDone)
	v := s.View()
	if v.DoneSteps != 20 || v.Resumes != 1 {
		t.Fatalf("resumed view wrong: %+v", v)
	}
	if err := m.Resume(s.ID()); err == nil {
		t.Fatal("resuming a done session must fail")
	}
}

func TestManagerFork(t *testing.T) {
	m := newTestManager(t, t.TempDir(), realRunner(), nil)
	parent, err := m.Create(testScenario(20, 5))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, parent, StateDone)
	opts := parent.Scenario().Options
	opts.Threads = 2
	child, err := m.Fork(parent.ID(), 10, opts, 30)
	if err != nil {
		t.Fatal(err)
	}
	if child.Fingerprint() == parent.Fingerprint() {
		t.Fatal("fork shares the parent fingerprint")
	}
	waitState(t, child, StateDone)
	v := child.View()
	if v.DoneSteps != 30 || v.ParentFP != parent.Fingerprint() || v.ParentStep != 10 {
		t.Fatalf("fork view wrong: %+v", v)
	}
	// Fork at the latest checkpoint (the final step), extending the run.
	child2, err := m.Fork(parent.ID(), -1, parent.Scenario().Options, 40)
	if err != nil {
		t.Fatal(err)
	}
	if child2.View().ParentStep != 20 {
		t.Fatalf("latest fork point %d, want 20", child2.View().ParentStep)
	}
	// A fork whose total does not extend past its fork point is rejected
	// (parent total 20 == fork point 20).
	waitState(t, child2, StateDone)
	if _, err := m.Fork(parent.ID(), -1, parent.Scenario().Options, 20); err == nil {
		t.Fatal("non-extending fork accepted")
	}
	if m.Stats().Forks != 2 {
		t.Fatalf("fork counter %d", m.Stats().Forks)
	}
}

// TestManagerRecovery is the durability core: a manager killed mid-run
// leaves its record and checkpoints on disk; a new manager over the same
// store resumes from the last durable segment and the final state is
// bitwise-identical to an uninterrupted run.
func TestManagerRecovery(t *testing.T) {
	// Reference: the same scenario, uninterrupted.
	ref := newTestManager(t, t.TempDir(), realRunner(), nil)
	rs, err := ref.Create(testScenario(20, 5))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, rs, StateDone)
	wantHash := rs.View().FieldHash
	if wantHash == "" {
		t.Fatal("reference run has no field hash")
	}

	dir := t.TempDir()
	gate := make(chan struct{}, 16)
	m1 := newTestManager(t, dir, gatedRunner(realRunner(), gate), nil)
	s1, err := m1.Create(testScenario(20, 5))
	if err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{}
	gate <- struct{}{}
	waitFor(t, "two segments", func() bool { return s1.Done() == 10 })
	// Kill the process mid-third-segment: Close cancels the root context
	// while the runner waits on the gate; the record stays "running".
	m1.Close()

	m2 := newTestManager(t, dir, realRunner(), nil)
	resumed, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("recovered %d sessions, want 1", resumed)
	}
	s2, ok := m2.Get(s1.ID())
	if !ok {
		t.Fatalf("recovered manager lost session %s", s1.ID())
	}
	waitState(t, s2, StateDone)
	v := s2.View()
	if v.DoneSteps != 20 {
		t.Fatalf("recovered session finished at %d steps", v.DoneSteps)
	}
	if v.Resumes == 0 {
		t.Fatal("recovery must count as a resume")
	}
	if v.FieldHash != wantHash {
		t.Fatalf("recovered final state %s differs from uninterrupted %s", v.FieldHash, wantHash)
	}
	if m2.Stats().Recovered != 1 {
		t.Fatalf("stats: %+v", m2.Stats())
	}
	// Fresh ids mint beyond the recovered ones.
	s3, err := m2.Create(testScenario(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if s3.ID() == s1.ID() {
		t.Fatalf("recovered manager reused id %s", s3.ID())
	}
	waitState(t, s3, StateDone)
}

// TestManagerRecoveryRollsBack covers the torn-write case: the record
// claims more steps than any durable checkpoint holds; recovery resumes
// from what is actually retained.
func TestManagerRecoveryRollsBack(t *testing.T) {
	dir := t.TempDir()
	m1 := newTestManager(t, dir, realRunner(), nil)
	s1, err := m1.Create(testScenario(20, 5))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s1, StateDone)
	wantHash := s1.View().FieldHash
	m1.Close()

	// Forge a crash: mark the record running at a step past the newest
	// checkpoint, and drop the newest checkpoint too.
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := st.Records()
	if err != nil || len(recs) != 1 {
		t.Fatalf("records: %v %v", recs, err)
	}
	rec := recs[0]
	rec.State = StateRunning
	rec.DoneSteps = 17
	if err := st.SaveRecord(rec); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, ckptFile(rec.Fingerprint, 20))); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, dir, realRunner(), nil)
	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	s2, ok := m2.Get(rec.ID)
	if !ok {
		t.Fatal("session not recovered")
	}
	waitState(t, s2, StateDone)
	if v := s2.View(); v.DoneSteps != 20 || v.FieldHash != wantHash {
		t.Fatalf("rollback recovery wrong: %+v (want hash %s)", v, wantHash)
	}
}

func TestManagerRejectsBadScenarios(t *testing.T) {
	m := newTestManager(t, t.TempDir(), realRunner(), nil)
	sc := testScenario(0, 5)
	if _, err := m.Create(sc); err == nil {
		t.Fatal("zero-step scenario accepted")
	}
	sc = testScenario(10, 5)
	sc.Problem.Initial = grid.NewField(sc.Problem.N, 1)
	if _, err := m.Create(sc); err == nil {
		t.Fatal("scenario with initial state accepted")
	}
	if err := m.Pause("nope"); err == nil {
		t.Fatal("pausing unknown session succeeded")
	}
	if err := m.Resume("nope"); err == nil {
		t.Fatal("resuming unknown session succeeded")
	}
	if _, err := m.Fork("nope", -1, core.Options{}, 0); err == nil {
		t.Fatal("forking unknown session succeeded")
	}
}

func TestManagerFailedSegment(t *testing.T) {
	boom := errors.New("kernel exploded")
	run := func(ctx context.Context, kind core.Kind, p core.Problem, o core.Options) (*core.Result, error) {
		return nil, boom
	}
	m := newTestManager(t, t.TempDir(), run, nil)
	s, err := m.Create(testScenario(10, 5))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, StateFailed)
	if v := s.View(); v.Error == "" || v.DoneSteps != 0 {
		t.Fatalf("failed view wrong: %+v", v)
	}
	if m.Stats().Failed != 1 {
		t.Fatalf("stats: %+v", m.Stats())
	}
}

func TestManagerSeeded(t *testing.T) {
	// Cut a checkpoint by hand, then seed a fresh manager with its bytes —
	// the gateway failover path.
	dir := t.TempDir()
	m1 := newTestManager(t, dir, realRunner(), nil)
	s1, err := m1.Create(testScenario(20, 5))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s1, StateDone)
	wantHash := s1.View().FieldHash
	st, _ := Open(dir)
	data, err := st.CheckpointBytes(s1.Fingerprint(), 10)
	if err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, t.TempDir(), realRunner(), nil)
	s2, err := m2.CreateSeeded(s1.Scenario(), data)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Fingerprint() != s1.Fingerprint() {
		t.Fatalf("seeded fingerprint %s, want %s", s2.Fingerprint(), s1.Fingerprint())
	}
	waitState(t, s2, StateDone)
	if v := s2.View(); v.DoneSteps != 20 || v.FieldHash != wantHash {
		t.Fatalf("seeded completion wrong: %+v (want hash %s)", v, wantHash)
	}
	// Seeding past the scenario's total is rejected.
	final, err := st.CheckpointBytes(s1.Fingerprint(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.CreateSeeded(s1.Scenario(), final); err == nil {
		t.Fatal("seed at the final step accepted")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := Open(filepath.Join(t.TempDir(), "nested", "dir"))
	if err != nil {
		t.Fatal(err)
	}
	n := grid.Uniform(4)
	f := grid.NewField(n, 1)
	f.Fill(func(i, j, k int) float64 { return float64(i*100 + j*10 + k) })
	meta := checkpoint.Meta{N: n, Nu: 1, T0: 2, StepsDone: 10, Fingerprint: "fp1", Options: "o1;x=1"}
	if err := st.SaveCheckpoint(meta, f); err != nil {
		t.Fatal(err)
	}
	for _, step := range []int64{20, 30, 40} {
		meta.StepsDone = step
		if err := st.SaveCheckpoint(meta, f); err != nil {
			t.Fatal(err)
		}
	}
	if steps := st.Steps("fp1"); len(steps) != 4 || steps[0] != 10 || steps[3] != 40 {
		t.Fatalf("steps %v", steps)
	}
	if latest, ok := st.Latest("fp1"); !ok || latest != 40 {
		t.Fatalf("latest %d %v", latest, ok)
	}
	m2, f2, err := st.LoadCheckpoint("fp1", 20)
	if err != nil {
		t.Fatal(err)
	}
	if m2.StepsDone != 20 || m2.Fingerprint != "fp1" {
		t.Fatalf("loaded meta %+v", m2)
	}
	if nm := grid.DiffNorms(f, f2); nm.LInf != 0 {
		t.Fatalf("field differs: %+v", nm)
	}
	if removed := st.Prune("fp1", 2); removed != 2 {
		t.Fatalf("pruned %d, want 2", removed)
	}
	if steps := st.Steps("fp1"); len(steps) != 2 || steps[0] != 30 {
		t.Fatalf("after prune: %v", steps)
	}
	// Checkpoints without a fingerprint are refused.
	if err := st.SaveCheckpoint(checkpoint.Meta{N: n}, f); err == nil {
		t.Fatal("fingerprint-less checkpoint accepted")
	}
	// Unknown fingerprints read as absent, not as errors.
	if steps := st.Steps("missing"); len(steps) != 0 {
		t.Fatalf("phantom steps %v", steps)
	}
	if _, ok := st.Latest("missing"); ok {
		t.Fatal("phantom latest")
	}
}

func TestStoreRecords(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UTC().Truncate(time.Second)
	rec := Record{ID: "n1-sess-000001", State: StateRunning, Kind: "single",
		Problem: "p1", Options: "o1", Segment: 5, Retain: 4,
		DoneSteps: 10, Fingerprint: "fp1", Created: now, Updated: now}
	if err := st.SaveRecord(rec); err != nil {
		t.Fatal(err)
	}
	// A corrupt record must not block the rest.
	if err := os.WriteFile(filepath.Join(dir, "sess-junk.json"), []byte("{notjson"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := st.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0] != rec {
		t.Fatalf("records %+v", recs)
	}
	if err := st.SaveRecord(Record{}); err == nil {
		t.Fatal("id-less record accepted")
	}
}

// TestNilStoreSafe pins the nil-receiver contract advectlint enforces: a
// node without a session directory carries a nil *Store everywhere.
func TestNilStoreSafe(t *testing.T) {
	var st *Store
	if st.Dir() != "" {
		t.Fatal("nil store has a dir")
	}
	if err := st.SaveCheckpoint(checkpoint.Meta{Fingerprint: "x"}, nil); !errors.Is(err, ErrNoStore) {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	if _, _, err := st.LoadCheckpoint("x", 1); !errors.Is(err, ErrNoStore) {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if _, err := st.CheckpointBytes("x", 1); !errors.Is(err, ErrNoStore) {
		t.Fatalf("CheckpointBytes: %v", err)
	}
	if st.Steps("x") != nil {
		t.Fatal("nil store has steps")
	}
	if _, ok := st.Latest("x"); ok {
		t.Fatal("nil store has a latest checkpoint")
	}
	if st.Prune("x", 1) != 0 {
		t.Fatal("nil store pruned")
	}
	if err := st.SaveRecord(Record{ID: "x"}); !errors.Is(err, ErrNoStore) {
		t.Fatalf("SaveRecord: %v", err)
	}
	if _, err := st.Records(); !errors.Is(err, ErrNoStore) {
		t.Fatalf("Records: %v", err)
	}
}
