package session

import (
	"math"
	"sync"
)

// WarmerConfig tunes the sweep detector. The zero value selects the
// defaults.
type WarmerConfig struct {
	// History is how many submissions must form an arithmetic progression
	// before the warmer predicts (default 3: two equal deltas).
	History int
	// Predict is how many next points are predicted per detection
	// (default 2).
	Predict int
	// MaxTracks bounds the detector state; when full, all tracks reset
	// (default 512).
	MaxTracks int
	// MaxWarmed bounds the set of cache keys remembered as pre-executed;
	// when full, the set resets (default 4096).
	MaxWarmed int
}

func (c WarmerConfig) withDefaults() WarmerConfig {
	if c.History < 2 {
		c.History = 3
	}
	if c.Predict < 1 {
		c.Predict = 2
	}
	if c.MaxTracks < 1 {
		c.MaxTracks = 512
	}
	if c.MaxWarmed < 1 {
		c.MaxWarmed = 4096
	}
	return c
}

// Prediction is one speculated next point of a sweep: the index of the
// advancing field and its predicted value.
type Prediction struct {
	Field int
	Value float64
}

// WarmerStats is the warmer's contribution to /v1/stats.
type WarmerStats struct {
	// Observed counts submissions fed to the detector.
	Observed int64 `json:"observed"`
	// Predictions counts speculated next points emitted.
	Predictions int64 `json:"predictions"`
	// Warmed counts predictions whose background pre-execution completed.
	Warmed int64 `json:"warmed"`
	// Shed counts predictions dropped: foreground traffic had priority, or
	// the point was already cached or in flight.
	Shed int64 `json:"shed"`
	// Hits counts interactive submissions answered from a pre-executed
	// cache entry — the warmer's payoff.
	Hits int64 `json:"hits"`
	// Tracks is the live detector-state size; Resets counts bound-driven
	// state flushes.
	Tracks int   `json:"tracks"`
	Resets int64 `json:"resets"`
}

// Warmer detects stepped-parameter sweeps in the submission stream: the
// same canonical problem with exactly one numeric field advancing
// arithmetically (a cmd/sweep scan, a user bisecting a parameter). Per
// candidate field it keeps one track keyed by everything *except* that
// field; when the same track sees History values with equal non-zero
// deltas, the next Predict points are speculated so idle workers can
// pre-execute them at background priority. A nil *Warmer is a valid
// disabled detector: every method is a cheap no-op.
type Warmer struct {
	mu     sync.Mutex
	cfg    WarmerConfig
	tracks map[uint64]*track
	warmed map[string]struct{}

	observed    int64
	predictions int64
	warmedN     int64
	shed        int64
	hits        int64
	resets      int64
}

// track follows one candidate field of one request shape.
type track struct {
	last float64
	diff float64
	run  int // consecutive equal non-zero deltas seen
}

// NewWarmer builds a sweep detector.
func NewWarmer(cfg WarmerConfig) *Warmer {
	cfg = cfg.withDefaults()
	return &Warmer{
		cfg:    cfg,
		tracks: make(map[uint64]*track, cfg.MaxTracks),
		warmed: make(map[string]struct{}, 64),
	}
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// trackKey hashes the request shape with field idx blanked: the track a
// sweep over field idx lands on regardless of idx's current value.
func trackKey(base string, idx int, fields []float64) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(base); i++ {
		h ^= uint64(base[i])
		h *= fnvPrime
	}
	h ^= uint64(idx)
	h *= fnvPrime
	for j, v := range fields {
		if j == idx {
			continue
		}
		h ^= math.Float64bits(v)
		h *= fnvPrime
	}
	return h
}

// Observe feeds one interactive submission to the detector: base is the
// request shape's non-numeric identity (kind, flags), fields its numeric
// parameters in a fixed order. It returns the speculated next points, nil
// when nothing progressed — the idle path BENCH_session.json bounds.
func (w *Warmer) Observe(base string, fields []float64) []Prediction {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.observed++
	var preds []Prediction
	for i, v := range fields {
		key := trackKey(base, i, fields)
		t, ok := w.tracks[key]
		if !ok {
			if len(w.tracks) >= w.cfg.MaxTracks {
				clear(w.tracks)
				w.resets++
			}
			w.tracks[key] = &track{last: v}
			continue
		}
		if v == t.last {
			continue // a repeat does not break the progression
		}
		d := v - t.last
		if d == t.diff {
			t.run++
		} else {
			t.diff = d
			t.run = 1
		}
		t.last = v
		if t.run >= w.cfg.History-1 {
			for k := 1; k <= w.cfg.Predict; k++ {
				preds = append(preds, Prediction{Field: i, Value: v + d*float64(k)})
			}
			w.predictions += int64(w.cfg.Predict)
		}
	}
	return preds
}

// MarkWarmed records that a predicted point's background pre-execution
// completed and its result sits in the cache under key.
func (w *Warmer) MarkWarmed(key string) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.warmed) >= w.cfg.MaxWarmed {
		clear(w.warmed)
		w.resets++
	}
	w.warmed[key] = struct{}{}
	w.warmedN++
}

// WasWarmed reports whether an interactive cache hit on key was served by
// a pre-executed result, counting it as a warmer hit when so.
func (w *Warmer) WasWarmed(key string) bool {
	if w == nil {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.warmed[key]; !ok {
		return false
	}
	w.hits++
	return true
}

// NoteShed counts one prediction dropped before execution.
func (w *Warmer) NoteShed() {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.shed++
	w.mu.Unlock()
}

// Stats snapshots the warmer counters.
func (w *Warmer) Stats() WarmerStats {
	if w == nil {
		return WarmerStats{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return WarmerStats{
		Observed: w.observed, Predictions: w.predictions,
		Warmed: w.warmedN, Shed: w.shed, Hits: w.hits,
		Tracks: len(w.tracks), Resets: w.resets,
	}
}
