package session

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/grid"
)

// ErrNoStore is returned by every operation on a nil *Store: a node
// without a session directory has sessions disabled, not broken.
var ErrNoStore = errors.New("session: no store configured")

// Store is the durable side of the subsystem: a directory of
// content-addressed checkpoint files (ck-<fingerprint>-<step>.ckpt, the
// versioned internal/checkpoint format) plus one JSON record per session
// (sess-<id>.json) describing where its trajectory stands. Everything a
// restarted process needs to resume is on disk; the in-memory Manager is
// rebuilt from a rescan. A nil *Store is a valid disabled store: every
// method answers with ErrNoStore or a zero value.
type Store struct {
	mu  sync.Mutex
	dir string
}

// Open prepares a session store rooted at dir, creating it if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("session: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory ("" when disabled).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// ckptFile names the checkpoint of fingerprint fp at step. The step is
// zero-padded so lexical order is numeric order.
func ckptFile(fp string, step int64) string {
	return fmt.Sprintf("ck-%s-%09d.ckpt", fp, step)
}

// SaveCheckpoint lands one durable segment boundary: the state of m's
// fingerprint at m.StepsDone, written atomically.
func (s *Store) SaveCheckpoint(m checkpoint.Meta, f *grid.Field) error {
	if s == nil {
		return ErrNoStore
	}
	if m.Fingerprint == "" {
		return fmt.Errorf("session: checkpoint carries no fingerprint")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return checkpoint.SaveFile(filepath.Join(s.dir, ckptFile(m.Fingerprint, m.StepsDone)), m, f)
}

// LoadCheckpoint reads the state of fingerprint fp at step.
func (s *Store) LoadCheckpoint(fp string, step int64) (checkpoint.Meta, *grid.Field, error) {
	if s == nil {
		return checkpoint.Meta{}, nil, ErrNoStore
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return checkpoint.LoadFile(filepath.Join(s.dir, ckptFile(fp, step)))
}

// CheckpointBytes returns the raw file of fingerprint fp at step, the form
// a gateway replicates to survive the owner's death.
func (s *Store) CheckpointBytes(fp string, step int64) ([]byte, error) {
	if s == nil {
		return nil, ErrNoStore
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.ReadFile(filepath.Join(s.dir, ckptFile(fp, step)))
}

// Steps returns the retained checkpoint steps of fingerprint fp in
// ascending order.
func (s *Store) Steps(fp string) []int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stepsLocked(fp)
}

func (s *Store) stepsLocked(fp string) []int64 {
	matches, err := filepath.Glob(filepath.Join(s.dir, "ck-"+fp+"-*.ckpt"))
	if err != nil {
		return nil
	}
	out := make([]int64, 0, len(matches))
	for _, m := range matches {
		base := strings.TrimSuffix(filepath.Base(m), ".ckpt")
		idx := strings.LastIndexByte(base, '-')
		if idx < 0 {
			continue
		}
		n, err := strconv.ParseInt(base[idx+1:], 10, 64)
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Latest returns the newest retained checkpoint step of fingerprint fp.
func (s *Store) Latest(fp string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	steps := s.Steps(fp)
	if len(steps) == 0 {
		return 0, false
	}
	return steps[len(steps)-1], true
}

// Prune drops the oldest checkpoints of fingerprint fp beyond retain
// (newest kept) and returns how many were removed.
func (s *Store) Prune(fp string, retain int) int {
	if s == nil {
		return 0
	}
	if retain < 1 {
		retain = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	steps := s.stepsLocked(fp)
	if len(steps) <= retain {
		return 0
	}
	removed := 0
	for _, step := range steps[:len(steps)-retain] {
		if os.Remove(filepath.Join(s.dir, ckptFile(fp, step))) == nil {
			removed++
		}
	}
	return removed
}

// Record is the durable description of one session: everything needed to
// rebuild it after a restart. Problem and Options are the core canonical
// encodings (exactly invertible because a scenario's Initial is nil), so a
// record plus the newest retained checkpoint fully determines how to
// continue.
type Record struct {
	ID          string    `json:"id"`
	State       State     `json:"state"`
	Kind        string    `json:"kind"`
	Problem     string    `json:"problem"`
	Options     string    `json:"options"`
	Segment     int       `json:"segment"`
	Retain      int       `json:"retain"`
	DoneSteps   int64     `json:"done_steps"`
	Fingerprint string    `json:"fingerprint"`
	ParentFP    string    `json:"parent_fp,omitempty"`
	ParentStep  int64     `json:"parent_step,omitempty"`
	TraceID     string    `json:"trace_id,omitempty"`
	Resumes     int64     `json:"resumes"`
	Segments    int64     `json:"segments"`
	Error       string    `json:"error,omitempty"`
	Created     time.Time `json:"created"`
	Updated     time.Time `json:"updated"`
}

// SaveRecord persists one session record atomically.
func (s *Store) SaveRecord(r Record) error {
	if s == nil {
		return ErrNoStore
	}
	if r.ID == "" {
		return fmt.Errorf("session: record without id")
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	path := filepath.Join(s.dir, "sess-"+r.ID+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Records loads every session record in the store. Individually corrupt
// files are skipped — a torn write must not block recovery of the rest.
func (s *Store) Records() ([]Record, error) {
	if s == nil {
		return nil, ErrNoStore
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	matches, err := filepath.Glob(filepath.Join(s.dir, "sess-*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	out := make([]Record, 0, len(matches))
	for _, m := range matches {
		data, err := os.ReadFile(m)
		if err != nil {
			continue
		}
		var r Record
		if err := json.Unmarshal(data, &r); err != nil || r.ID == "" {
			continue
		}
		out = append(out, r)
	}
	return out, nil
}
