package session

import (
	"testing"
	"time"

	"repro/internal/core"
)

// benchSession builds a session without a manager: the status path under
// benchmark touches only the Session itself.
func benchSession() *Session {
	sc := Scenario{Kind: core.BulkSync, Problem: core.DefaultProblem(32, 100), Segment: 25, Retain: 4}
	return &Session{
		id: "n1-sess-000042", sc: sc, fp: sc.Fingerprint(),
		state: StateRunning, doneSteps: 75, segments: 3, resumes: 1,
		created: time.Unix(1, 0), updated: time.Unix(2, 0),
		fieldHash: "0123456789abcdef", lastCkpt: 75, lastGF: 1.5,
		pauseCh: make(chan struct{}),
	}
}

// TestSessionStatusAllocationBounded guards the status hot path: a View
// snapshot is a single struct copy under the session mutex, nothing more.
// BENCH_session.json bounds its time; this pins its allocations.
func TestSessionStatusAllocationBounded(t *testing.T) {
	s := benchSession()
	allocs := testing.AllocsPerRun(1000, func() {
		v := s.View()
		if v.DoneSteps != 75 {
			t.Fatal("wrong view")
		}
	})
	if allocs > 0 {
		t.Fatalf("session status allocates %.1f times per call, want 0", allocs)
	}
}

// BenchmarkSessionStatus is the GET /v1/sessions/{id} hot path with the
// HTTP layer peeled off.
func BenchmarkSessionStatus(b *testing.B) {
	s := benchSession()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := s.View()
		if v.DoneSteps != 75 {
			b.Fatal("wrong view")
		}
	}
}

// TestWarmerIdleAllocationFree guards the detector's idle path: an
// observation that extends no progression (steady repeated traffic) must
// not allocate — the warmer rides every interactive submission.
func TestWarmerIdleAllocationFree(t *testing.T) {
	w := NewWarmer(WarmerConfig{})
	fields := []float64{32, 100, 2, 4, 0, 0, 0, 0, 0, 0}
	w.Observe("sim|bulk", fields) // seed the tracks
	allocs := testing.AllocsPerRun(1000, func() {
		if p := w.Observe("sim|bulk", fields); p != nil {
			t.Fatal("idle observation predicted")
		}
	})
	if allocs > 0 {
		t.Fatalf("idle warmer observation allocates %.1f times per call, want 0", allocs)
	}
}

// BenchmarkWarmerIdle is the per-submission detector cost when no sweep is
// progressing; BENCH_session.json bounds it.
func BenchmarkWarmerIdle(b *testing.B) {
	w := NewWarmer(WarmerConfig{})
	fields := []float64{32, 100, 2, 4, 0, 0, 0, 0, 0, 0}
	w.Observe("sim|bulk", fields)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if p := w.Observe("sim|bulk", fields); p != nil {
			b.Fatal("idle observation predicted")
		}
	}
}
