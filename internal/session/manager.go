package session

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/grid"
)

// Runner executes one segment of a session: the same contract as a
// one-shot run. Injected so this package depends on neither the
// implementation registry nor the serving layer.
type Runner func(ctx context.Context, kind core.Kind, p core.Problem, o core.Options) (*core.Result, error)

// Event is one session lifecycle notification, fanned out to the SSE hub
// and the flight recorder by the serving layer.
type Event struct {
	Type    string `json:"type"`
	Session View   `json:"session"`
}

// Event types.
const (
	EventCreated   = "session-created"
	EventRecovered = "session-recovered"
	EventSegment   = "session-segment"
	EventPaused    = "session-paused"
	EventResumed   = "session-resumed"
	EventForked    = "session-forked"
	EventDone      = "session-done"
	EventFailed    = "session-failed"
)

// Config assembles a Manager. Store and Run are required.
type Config struct {
	Store *Store
	Run   Runner
	// Segment is the default steps per durable checkpoint (default 25).
	Segment int
	// Retain is the default checkpoints kept per session (default 4).
	Retain int
	// Workers bounds concurrently executing segments across all sessions
	// (default 1); sessions beyond it wait between segments.
	Workers int
	// IDPrefix namespaces session ids (a cluster node id), so ids stay
	// globally unique across shards.
	IDPrefix string
	// Notify receives lifecycle events, called outside manager locks.
	Notify func(Event)
	// Logger receives session lifecycle lines. Default: discard.
	Logger *slog.Logger
}

// Stats is the manager's contribution to /v1/stats.
type Stats struct {
	Active    int   `json:"active"`
	Paused    int   `json:"paused"`
	Done      int   `json:"done"`
	Failed    int   `json:"failed"`
	Created   int64 `json:"created"`
	Recovered int64 `json:"recovered"`
	Resumes   int64 `json:"resumes"`
	Forks     int64 `json:"forks"`
	Segments  int64 `json:"segments"`
}

// Manager owns the live sessions of one node: creation, the segment run
// loops, pause/resume/fork transitions, and crash recovery from the store.
type Manager struct {
	cfg    Config
	log    *slog.Logger
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	sem    chan struct{}

	mu       sync.Mutex
	sessions map[string]*Session
	order    []string // creation order, for stable listings
	seq      int64

	created   atomic.Int64
	recovered atomic.Int64
	resumes   atomic.Int64
	forks     atomic.Int64
	segments  atomic.Int64
}

// NewManager builds a manager. Call Recover to resume interrupted sessions
// from the store, and Close to stop every run loop.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("session: manager requires a store")
	}
	if cfg.Run == nil {
		return nil, fmt.Errorf("session: manager requires a runner")
	}
	if cfg.Segment < 1 {
		cfg.Segment = 25
	}
	if cfg.Retain < 1 {
		cfg.Retain = 4
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	//advect:nolint ctxflow the manager root context outlives any request; Close cancels it explicitly
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		cfg: cfg, log: cfg.Logger, ctx: ctx, cancel: cancel,
		sem:      make(chan struct{}, cfg.Workers),
		sessions: make(map[string]*Session),
	}, nil
}

// Close stops every run loop and waits for in-flight segments to unwind.
// Interrupted sessions keep their "running" record on disk, exactly like a
// crash, so the next process recovers them.
func (m *Manager) Close() {
	m.cancel()
	m.wg.Wait()
}

// newID mints the next session id.
func (m *Manager) newID() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	return fmt.Sprintf("%ssess-%06d", m.cfg.IDPrefix, m.seq)
}

// normalize applies manager defaults and validates the scenario.
func (m *Manager) normalize(sc Scenario) (Scenario, error) {
	if sc.Problem.Initial != nil {
		return sc, fmt.Errorf("session: scenario problem must not carry an initial state")
	}
	if sc.Problem.Steps < 1 {
		return sc, fmt.Errorf("session: scenario needs at least one step")
	}
	if sc.Segment < 1 {
		sc.Segment = m.cfg.Segment
	}
	if sc.Retain < 1 {
		sc.Retain = m.cfg.Retain
	}
	if sc.Segment > sc.Problem.Steps {
		sc.Segment = sc.Problem.Steps
	}
	sc.Options = sc.Options.Normalize()
	return sc, nil
}

// Create starts a new root session for the scenario.
func (m *Manager) Create(sc Scenario) (*Session, error) {
	sc, err := m.normalize(sc)
	if err != nil {
		return nil, err
	}
	s := m.build(m.newID(), sc, 0, 0)
	if err := m.persist(s); err != nil {
		return nil, err
	}
	m.register(s)
	m.created.Add(1)
	m.log.Info("session created", sessionArgs(s)...)
	m.notify(EventCreated, s)
	m.start(s)
	return s, nil
}

// CreateSeeded starts a session already advanced to a checkpointed state —
// the failover path: a gateway re-creates a dead owner's session on a
// survivor from the replicated checkpoint bytes.
func (m *Manager) CreateSeeded(sc Scenario, data []byte) (*Session, error) {
	sc, err := m.normalize(sc)
	if err != nil {
		return nil, err
	}
	meta, f, err := checkpoint.Load(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("session: seed checkpoint: %w", err)
	}
	if meta.StepsDone >= int64(sc.Problem.Steps) {
		return nil, fmt.Errorf("session: seed checkpoint at step %d is past the scenario's %d steps",
			meta.StepsDone, sc.Problem.Steps)
	}
	// Re-tag under this scenario's fingerprint: the seed may have been cut
	// by a parent or by the same session on another node.
	meta = meta.WithLineage(sc.Fingerprint(), sc.Options.Canonical())
	if err := m.cfg.Store.SaveCheckpoint(meta, f); err != nil {
		return nil, err
	}
	s := m.build(m.newID(), sc, meta.StepsDone, 1)
	s.lastCkpt = meta.StepsDone
	s.fieldHash = fieldHash(f)
	if err := m.persist(s); err != nil {
		return nil, err
	}
	m.register(s)
	m.recovered.Add(1)
	m.resumes.Add(1)
	m.log.Info("session seeded", sessionArgs(s, "step", meta.StepsDone)...)
	m.notify(EventRecovered, s)
	m.start(s)
	return s, nil
}

// build constructs an in-memory session (not yet registered or persisted).
func (m *Manager) build(id string, sc Scenario, done, resumes int64) *Session {
	now := time.Now()
	return &Session{
		id: id, sc: sc, fp: sc.Fingerprint(),
		state: StateRunning, doneSteps: done, resumes: resumes,
		created: now, updated: now,
		pauseCh: make(chan struct{}),
	}
}

func (m *Manager) register(s *Session) {
	m.mu.Lock()
	m.sessions[s.id] = s
	m.order = append(m.order, s.id)
	m.mu.Unlock()
}

// Get returns a session by id.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// List snapshots every session in creation order.
func (m *Manager) List() []View {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	sessions := make([]*Session, 0, len(ids))
	for _, id := range ids {
		sessions = append(sessions, m.sessions[id])
	}
	m.mu.Unlock()
	out := make([]View, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, s.View())
	}
	return out
}

// Stats counts sessions by state plus the lifetime counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	sessions := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.mu.Unlock()
	st := Stats{
		Created: m.created.Load(), Recovered: m.recovered.Load(),
		Resumes: m.resumes.Load(), Forks: m.forks.Load(),
		Segments: m.segments.Load(),
	}
	for _, s := range sessions {
		switch s.State() {
		case StateRunning:
			st.Active++
		case StatePaused:
			st.Paused++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		}
	}
	return st
}

// Pause requests a pause: the in-flight segment is cancelled and the
// session rolls back to its last durable checkpoint.
func (m *Manager) Pause(id string) error {
	s, ok := m.Get(id)
	if !ok {
		return fmt.Errorf("session: unknown session %q", id)
	}
	if !s.requestPause() {
		return fmt.Errorf("session: %s is %s, not running", id, s.State())
	}
	return nil
}

// Resume restarts a paused session from its last durable checkpoint.
func (m *Manager) Resume(id string) error {
	s, ok := m.Get(id)
	if !ok {
		return fmt.Errorf("session: unknown session %q", id)
	}
	s.mu.Lock()
	if s.state != StatePaused {
		state := s.state
		s.mu.Unlock()
		return fmt.Errorf("session: %s is %s, not paused", id, state)
	}
	s.state = StateRunning
	s.pauseReq = false
	s.pauseCh = make(chan struct{})
	s.resumes++
	s.updated = time.Now()
	s.mu.Unlock()
	m.resumes.Add(1)
	if err := m.persist(s); err != nil {
		return err
	}
	m.log.Info("session resumed", sessionArgs(s)...)
	m.notify(EventResumed, s)
	m.start(s)
	return nil
}

// Fork starts a new session from a retained checkpoint of parent:
// branch-and-vary without recomputing the shared prefix. atStep < 0
// selects the newest checkpoint; opts are the child's (mutated) options;
// totalSteps extends or shortens the trajectory (parent total when 0).
func (m *Manager) Fork(parentID string, atStep int64, opts core.Options, totalSteps int64) (*Session, error) {
	parent, ok := m.Get(parentID)
	if !ok {
		return nil, fmt.Errorf("session: unknown session %q", parentID)
	}
	if atStep < 0 {
		latest, ok := m.cfg.Store.Latest(parent.fp)
		if !ok {
			return nil, fmt.Errorf("session: %s has no durable checkpoint to fork from yet", parentID)
		}
		atStep = latest
	}
	meta, f, err := m.cfg.Store.LoadCheckpoint(parent.fp, atStep)
	if err != nil {
		return nil, fmt.Errorf("session: fork point %d of %s is not retained: %w", atStep, parentID, err)
	}
	sc := parent.sc
	sc.Options = opts
	if totalSteps > 0 {
		sc.Problem.Steps = int(totalSteps)
	}
	sc.ParentFP = parent.fp
	sc.ParentStep = atStep
	sc, err = m.normalize(sc)
	if err != nil {
		return nil, err
	}
	if int64(sc.Problem.Steps) <= atStep {
		return nil, fmt.Errorf("session: fork total %d steps does not extend past the fork point %d",
			sc.Problem.Steps, atStep)
	}
	// The fork owns its starting state: the parent can prune freely.
	meta = meta.WithLineage(sc.Fingerprint(), sc.Options.Canonical())
	if err := m.cfg.Store.SaveCheckpoint(meta, f); err != nil {
		return nil, err
	}
	s := m.build(m.newID(), sc, atStep, 0)
	s.lastCkpt = atStep
	s.fieldHash = fieldHash(f)
	if err := m.persist(s); err != nil {
		return nil, err
	}
	m.register(s)
	m.forks.Add(1)
	m.log.Info("session forked", sessionArgs(s, "parent", parentID, "step", atStep)...)
	m.notify(EventForked, s)
	m.start(s)
	return s, nil
}

// Recover rescans the store and rebuilds every recorded session:
// interrupted ("running") records resume execution from their last durable
// checkpoint; paused and terminal ones come back queryable. Returns how
// many were resumed.
func (m *Manager) Recover() (int, error) {
	recs, err := m.cfg.Store.Records()
	if err != nil {
		return 0, err
	}
	resumed := 0
	for _, rec := range recs {
		s, err := m.rebuild(rec)
		if err != nil {
			m.log.Warn("session record skipped", "id", rec.ID, "error", err)
			continue
		}
		m.register(s)
		if n := sessSeq(rec.ID); n > 0 {
			m.mu.Lock()
			if n > m.seq {
				m.seq = n
			}
			m.mu.Unlock()
		}
		if s.State() == StateRunning {
			resumed++
			m.recovered.Add(1)
			m.resumes.Add(1)
			m.log.Info("session recovered", sessionArgs(s, "done", s.Done())...)
			m.notify(EventRecovered, s)
			m.start(s)
		}
	}
	return resumed, nil
}

// rebuild inverts a record back into a session.
func (m *Manager) rebuild(rec Record) (*Session, error) {
	kind, err := core.ParseKind(rec.Kind)
	if err != nil {
		return nil, err
	}
	p, err := core.ParseProblemCanonical(rec.Problem)
	if err != nil {
		return nil, err
	}
	o, err := core.ParseOptionsCanonical(rec.Options)
	if err != nil {
		return nil, err
	}
	sc := Scenario{
		Kind: kind, Problem: p, Options: o,
		Segment: rec.Segment, Retain: rec.Retain,
		ParentFP: rec.ParentFP, ParentStep: rec.ParentStep,
		TraceID: rec.TraceID,
	}
	sc, err = m.normalize(sc)
	if err != nil {
		return nil, err
	}
	if fp := sc.Fingerprint(); fp != rec.Fingerprint {
		return nil, fmt.Errorf("recorded fingerprint %s does not match scenario (%s)", rec.Fingerprint, fp)
	}
	s := m.build(rec.ID, sc, rec.DoneSteps, rec.Resumes)
	s.state = rec.State
	s.segments = rec.Segments
	s.errMsg = rec.Error
	s.created = rec.Created
	if s.state == StateRunning {
		s.resumes++ // this recovery
	}
	return s, nil
}

// sessSeq extracts the numeric suffix of a session id ("n1-sess-000007" →
// 7), so recovered managers mint ids beyond every recorded one.
func sessSeq(id string) int64 {
	idx := strings.LastIndexByte(id, '-')
	if idx < 0 {
		return 0
	}
	n, err := strconv.ParseInt(id[idx+1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// persist writes the session's current record.
func (m *Manager) persist(s *Session) error {
	s.mu.Lock()
	rec := Record{
		ID: s.id, State: s.state,
		Kind:    s.sc.Kind.String(),
		Problem: s.sc.Problem.Canonical(),
		Options: s.sc.Options.Canonical(),
		Segment: s.sc.Segment, Retain: s.sc.Retain,
		DoneSteps: s.doneSteps, Fingerprint: s.fp,
		ParentFP: s.sc.ParentFP, ParentStep: s.sc.ParentStep,
		TraceID: s.sc.TraceID, Resumes: s.resumes, Segments: s.segments,
		Error: s.errMsg, Created: s.created, Updated: s.updated,
	}
	s.mu.Unlock()
	return m.cfg.Store.SaveRecord(rec)
}

func (m *Manager) notify(typ string, s *Session) {
	if m.cfg.Notify == nil {
		return
	}
	m.cfg.Notify(Event{Type: typ, Session: s.View()})
}

func sessionArgs(s *Session, extra ...any) []any {
	args := make([]any, 0, 8+len(extra))
	args = append(args, "session", s.id, "fp", s.fp)
	if s.sc.TraceID != "" {
		args = append(args, "trace_id", s.sc.TraceID)
	}
	return append(args, extra...)
}

// start launches the session's run loop, tied to the manager WaitGroup.
func (m *Manager) start(s *Session) {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.loop(s)
	}()
}

// loop drives a session segment by segment until it finishes, pauses,
// fails, or the manager shuts down (which, like a crash, leaves a
// "running" record on disk for the next process to recover).
func (m *Manager) loop(s *Session) {
	field, t0, err := m.loadState(s)
	if err != nil {
		m.land(s, StateFailed, EventFailed, err)
		return
	}
	for {
		if m.ctx.Err() != nil {
			return
		}
		if s.pauseRequested() {
			m.land(s, StatePaused, EventPaused, nil)
			return
		}
		if s.Done() >= int64(s.sc.Problem.Steps) {
			m.land(s, StateDone, EventDone, nil)
			return
		}
		select {
		case m.sem <- struct{}{}:
		case <-s.pauseWait():
			m.land(s, StatePaused, EventPaused, nil)
			return
		case <-m.ctx.Done():
			return
		}
		field, t0, err = m.runSegment(s, field, t0)
		<-m.sem
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) && s.pauseRequested():
			m.land(s, StatePaused, EventPaused, nil)
			return
		case m.ctx.Err() != nil:
			return
		default:
			m.land(s, StateFailed, EventFailed, err)
			return
		}
	}
}

// loadState positions the loop at the session's last durable checkpoint,
// reconciling the record with what is actually retained: a crash between
// a segment finishing and its record landing rolls back to the newest
// checkpoint; no checkpoint at all restarts from step zero.
func (m *Manager) loadState(s *Session) (*grid.Field, float64, error) {
	if s.Done() == 0 {
		return nil, s.sc.Problem.T0, nil
	}
	latest, ok := m.cfg.Store.Latest(s.fp)
	if !ok {
		s.mu.Lock()
		s.doneSteps = 0
		s.mu.Unlock()
		return nil, s.sc.Problem.T0, nil
	}
	meta, f, err := m.cfg.Store.LoadCheckpoint(s.fp, latest)
	if err != nil {
		return nil, 0, fmt.Errorf("session: %s: loading checkpoint %d: %w", s.id, latest, err)
	}
	s.mu.Lock()
	s.doneSteps = meta.StepsDone
	s.lastCkpt = meta.StepsDone
	s.mu.Unlock()
	return f, meta.T0, nil
}

// runSegment integrates one segment and lands its durable checkpoint.
func (m *Manager) runSegment(s *Session, field *grid.Field, t0 float64) (*grid.Field, float64, error) {
	done := s.Done()
	seg := int64(s.sc.Segment)
	if remaining := int64(s.sc.Problem.Steps) - done; seg > remaining {
		seg = remaining
	}
	p := s.sc.Problem
	p.Steps = int(seg)
	if field != nil {
		p.Initial = field
		p.T0 = t0
	}
	ctx, cancel := context.WithCancel(m.ctx)
	s.setSegCancel(cancel)
	start := time.Now()
	res, err := m.cfg.Run(ctx, s.sc.Kind, p, s.sc.Options)
	cancel()
	s.setSegCancel(nil)
	if err != nil {
		return field, t0, err
	}
	meta, final, err := checkpoint.FromResult(p, res)
	if err != nil {
		return field, t0, err
	}
	meta.StepsDone = done + seg
	meta = meta.WithLineage(s.fp, s.sc.Options.Canonical())
	if err := m.cfg.Store.SaveCheckpoint(meta, final); err != nil {
		return field, t0, err
	}
	m.cfg.Store.Prune(s.fp, s.sc.Retain)
	hash := fieldHash(final)
	s.mu.Lock()
	s.doneSteps = meta.StepsDone
	s.segments++
	s.lastCkpt = meta.StepsDone
	s.fieldHash = hash
	s.lastGF = res.GF
	s.updated = time.Now()
	s.mu.Unlock()
	m.segments.Add(1)
	if err := m.persist(s); err != nil {
		return final, meta.T0, err
	}
	m.log.Info("session segment", sessionArgs(s, "done", meta.StepsDone,
		"total", s.sc.Problem.Steps, "elapsed", time.Since(start))...)
	m.notify(EventSegment, s)
	return final, meta.T0, nil
}

// land moves the session to a resting state and persists it.
func (m *Manager) land(s *Session, state State, event string, cause error) {
	s.mu.Lock()
	if s.state.Terminal() {
		s.mu.Unlock()
		return
	}
	s.state = state
	if cause != nil {
		s.errMsg = cause.Error()
	}
	s.updated = time.Now()
	s.mu.Unlock()
	if err := m.persist(s); err != nil {
		m.log.Warn("session record write failed", sessionArgs(s, "error", err)...)
	}
	m.log.Info("session "+string(state), sessionArgs(s, "done", s.Done())...)
	m.notify(event, s)
}

// SortViews orders session views by creation time then id, for stable
// federated listings.
func SortViews(vs []View) {
	sort.Slice(vs, func(i, j int) bool {
		if !vs[i].Created.Equal(vs[j].Created) {
			return vs[i].Created.Before(vs[j].Created)
		}
		return vs[i].ID < vs[j].ID
	})
}
