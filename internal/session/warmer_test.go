package session

import "testing"

func TestWarmerDetectsSteppedSweep(t *testing.T) {
	w := NewWarmer(WarmerConfig{})
	base := "sim|bulk"
	// Field 1 advances by 8 each submission; the rest are constant.
	fields := func(v float64) []float64 { return []float64{32, v, 2, 4} }
	if p := w.Observe(base, fields(8)); p != nil {
		t.Fatalf("first point predicted: %v", p)
	}
	if p := w.Observe(base, fields(16)); p != nil {
		t.Fatalf("one delta predicted: %v", p)
	}
	preds := w.Observe(base, fields(24))
	if len(preds) != 2 {
		t.Fatalf("predictions %v, want 2", preds)
	}
	for i, want := range []float64{32, 40} {
		if preds[i].Field != 1 || preds[i].Value != want {
			t.Fatalf("prediction %d = %+v, want field 1 value %g", i, preds[i], want)
		}
	}
	// The sweep continues: every further point keeps predicting ahead.
	preds = w.Observe(base, fields(32))
	if len(preds) != 2 || preds[0].Value != 40 || preds[1].Value != 48 {
		t.Fatalf("continued predictions %v", preds)
	}
	st := w.Stats()
	if st.Observed != 4 || st.Predictions != 4 {
		t.Fatalf("stats %+v", st)
	}
}

func TestWarmerIgnoresRepeatsAndNoise(t *testing.T) {
	w := NewWarmer(WarmerConfig{})
	base := "sim|single"
	fields := func(v float64) []float64 { return []float64{16, v} }
	w.Observe(base, fields(8))
	w.Observe(base, fields(16))
	// An exact repeat (a cache-hitting client retry) must not break the
	// progression.
	if p := w.Observe(base, fields(16)); p != nil {
		t.Fatalf("repeat predicted: %v", p)
	}
	if preds := w.Observe(base, fields(24)); len(preds) != 2 {
		t.Fatalf("progression broken by repeat: %v", preds)
	}
	// A non-arithmetic jump resets the run.
	if p := w.Observe(base, fields(100)); p != nil {
		t.Fatalf("jump predicted: %v", p)
	}
	// Two different bases never share tracks.
	w2 := NewWarmer(WarmerConfig{})
	w2.Observe("a", fields(8))
	w2.Observe("b", fields(16))
	w2.Observe("a", fields(16))
	w2.Observe("b", fields(24))
	if p := w2.Observe("a", fields(24)); len(p) != 2 {
		t.Fatalf("interleaved bases broke detection: %v", p)
	}
}

func TestWarmerHistoryConfig(t *testing.T) {
	w := NewWarmer(WarmerConfig{History: 4, Predict: 1})
	fields := func(v float64) []float64 { return []float64{v} }
	w.Observe("x", fields(1))
	w.Observe("x", fields(2))
	if p := w.Observe("x", fields(3)); p != nil {
		t.Fatalf("history 4 predicted after 3 points: %v", p)
	}
	preds := w.Observe("x", fields(4))
	if len(preds) != 1 || preds[0].Value != 5 {
		t.Fatalf("predictions %v", preds)
	}
}

func TestWarmerTrackBound(t *testing.T) {
	w := NewWarmer(WarmerConfig{MaxTracks: 8})
	for i := 0; i < 100; i++ {
		w.Observe("x", []float64{float64(i * 7), float64(i * 13), float64(i)})
	}
	st := w.Stats()
	if st.Tracks > 8 {
		t.Fatalf("tracks %d exceed bound 8", st.Tracks)
	}
	if st.Resets == 0 {
		t.Fatal("bound never triggered a reset")
	}
}

func TestWarmerHitAccounting(t *testing.T) {
	w := NewWarmer(WarmerConfig{})
	if w.WasWarmed("k1") {
		t.Fatal("unwarmed key reported warm")
	}
	w.MarkWarmed("k1")
	w.NoteShed()
	if !w.WasWarmed("k1") {
		t.Fatal("warmed key not found")
	}
	st := w.Stats()
	if st.Warmed != 1 || st.Hits != 1 || st.Shed != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestNilWarmerSafe pins the nil-receiver contract advectlint enforces: a
// node with warming disabled carries a nil *Warmer on every submission.
func TestNilWarmerSafe(t *testing.T) {
	var w *Warmer
	if p := w.Observe("x", []float64{1, 2}); p != nil {
		t.Fatalf("nil warmer predicted: %v", p)
	}
	w.MarkWarmed("k")
	w.NoteShed()
	if w.WasWarmed("k") {
		t.Fatal("nil warmer reported a hit")
	}
	if st := w.Stats(); st != (WarmerStats{}) {
		t.Fatalf("nil warmer stats %+v", st)
	}
}
