// Package session turns one-shot simulation jobs into resumable service
// objects. The paper's GPU-resident scenario assumes "a computation might
// run for hours between CPU-GPU checkpoints" (§IV-E); here that run is a
// session: a long scenario executed as a chain of checkpointed segments
// (every K steps, checkpoint.FromResult into a content-addressed store
// keyed by the canonical fingerprint + step), which can be paused, resumed,
// forked from any retained checkpoint with mutated options, and — because
// every segment boundary is durable — survives a process restart: on
// startup the store is rescanned and interrupted sessions continue from
// their last durable segment, bit-for-bit equal to an uninterrupted run.
//
// The same store powers the speculative sweep warmer (warmer.go): a
// detector that watches submitted fingerprints for stepped-parameter
// patterns and predicts the next points so idle workers can pre-execute
// them at background priority.
package session

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
)

// State is a session's position in its lifecycle.
type State string

const (
	StateRunning State = "running"
	StatePaused  State = "paused"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Terminal reports whether no further transitions can happen.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Scenario describes the full trajectory a session integrates: a problem
// (Steps is the total), the options it runs under, and the segmentation of
// the work into durable checkpoints. Problem.Initial must be nil — a
// session's state lives in its checkpoints, not in the scenario — which
// keeps the scenario exactly round-trippable through its canonical
// encoding for crash recovery.
type Scenario struct {
	Kind    core.Kind
	Problem core.Problem
	Options core.Options

	// Segment is the number of steps integrated between durable
	// checkpoints (the manager default applies when 0).
	Segment int
	// Retain bounds the checkpoints kept per session; older ones are
	// pruned, newest kept (the manager default applies when 0).
	Retain int

	// ParentFP and ParentStep record fork lineage: the fingerprint of the
	// parent session and the checkpointed step the fork branched from.
	// Empty for root sessions.
	ParentFP   string
	ParentStep int64

	// TraceID is an optional cluster-wide correlation id propagated across
	// failover, so one logical session stays one trace.
	TraceID string
}

// Fingerprint returns the session's content-addressed identity. Root
// sessions reuse the canonical run fingerprint (two sessions asking for
// the same computation share checkpoints); forks fold in their branch
// point so a fork is never confused with a root run of its mutated
// scenario.
func (sc Scenario) Fingerprint() string {
	fp := core.Fingerprint(sc.Kind, sc.Problem, sc.Options)
	if sc.ParentFP == "" {
		return fp
	}
	sum := sha256.Sum256([]byte(fp + "|fork|" + sc.ParentFP + ":" + strconv.FormatInt(sc.ParentStep, 10)))
	return hex.EncodeToString(sum[:])
}

// Session is one resumable simulation moving through segments. All mutable
// fields are guarded by mu; the identity fields (id, sc, fp) are set once
// at construction and read freely.
type Session struct {
	id string
	sc Scenario
	fp string

	mu        sync.Mutex
	state     State
	doneSteps int64
	segments  int64 // segments completed over the session's lifetime
	resumes   int64 // recoveries + explicit resumes
	errMsg    string
	created   time.Time
	updated   time.Time
	fieldHash string // sha256 of the interior at the last durable checkpoint
	lastCkpt  int64  // step of the last durable checkpoint
	lastGF    float64

	pauseReq  bool
	pauseCh   chan struct{} // closed when a pause is requested
	segCancel func()        // cancels the in-flight segment, nil between segments
}

// ID returns the session's identifier.
func (s *Session) ID() string { return s.id }

// Fingerprint returns the session's content-addressed identity.
func (s *Session) Fingerprint() string { return s.fp }

// Scenario returns the session's immutable scenario.
func (s *Session) Scenario() Scenario { return s.sc }

// State returns the session's current lifecycle state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Done returns the steps integrated so far.
func (s *Session) Done() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.doneSteps
}

// requestPause flags the session and cancels any in-flight segment; the
// run loop lands the paused state after rolling back to the last durable
// checkpoint.
func (s *Session) requestPause() bool {
	s.mu.Lock()
	if s.state != StateRunning || s.pauseReq {
		s.mu.Unlock()
		return false
	}
	s.pauseReq = true
	close(s.pauseCh)
	cancel := s.segCancel
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

func (s *Session) pauseRequested() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pauseReq
}

// pauseWait returns a channel closed when a pause has been requested.
func (s *Session) pauseWait() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pauseCh
}

func (s *Session) setSegCancel(c func()) {
	s.mu.Lock()
	s.segCancel = c
	s.mu.Unlock()
}

// View is the JSON representation of a session's status.
type View struct {
	ID          string    `json:"id"`
	State       State     `json:"state"`
	Kind        string    `json:"kind"`
	Fingerprint string    `json:"fingerprint"`
	TotalSteps  int64     `json:"total_steps"`
	DoneSteps   int64     `json:"done_steps"`
	Segment     int       `json:"segment"`
	Retain      int       `json:"retain"`
	Segments    int64     `json:"segments"`
	Resumes     int64     `json:"resumes"`
	ParentFP    string    `json:"parent_fp,omitempty"`
	ParentStep  int64     `json:"parent_step,omitempty"`
	TraceID     string    `json:"trace_id,omitempty"`
	Error       string    `json:"error,omitempty"`
	Created     time.Time `json:"created"`
	Updated     time.Time `json:"updated"`
	// LastCheckpoint is the step of the newest durable checkpoint (0 when
	// none has landed yet), and FieldHash the sha256 of its interior — the
	// handle e2e tests use to assert bitwise-identical recovery.
	LastCheckpoint int64   `json:"last_checkpoint"`
	FieldHash      string  `json:"field_hash,omitempty"`
	LastGF         float64 `json:"last_gf,omitempty"`
}

// View snapshots the session for the API. This is the status hot path:
// BENCH_session.json bounds its allocations.
func (s *Session) View() View {
	s.mu.Lock()
	defer s.mu.Unlock()
	return View{
		ID: s.id, State: s.state, Kind: s.sc.Kind.String(),
		Fingerprint: s.fp,
		TotalSteps:  int64(s.sc.Problem.Steps), DoneSteps: s.doneSteps,
		Segment: s.sc.Segment, Retain: s.sc.Retain,
		Segments: s.segments, Resumes: s.resumes,
		ParentFP: s.sc.ParentFP, ParentStep: s.sc.ParentStep,
		TraceID: s.sc.TraceID, Error: s.errMsg,
		Created: s.created, Updated: s.updated,
		LastCheckpoint: s.lastCkpt, FieldHash: s.fieldHash, LastGF: s.lastGF,
	}
}

// fieldHash returns the hex SHA-256 of a field's interior values, the
// bitwise identity of a checkpointed state.
func fieldHash(f *grid.Field) string {
	h := sha256.New()
	var buf [8]byte
	for k := 0; k < f.N.Z; k++ {
		for j := 0; j < f.N.Y; j++ {
			for i := 0; i < f.N.X; i++ {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f.At(i, j, k)))
				h.Write(buf[:])
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
