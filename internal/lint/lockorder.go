package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// LockOrder builds the module-wide lock-order analyzer: the
// inter-procedural deadlock check. The per-package Run pass walks every
// function in dependency order and exports a fact per function — which
// locks it acquires, which it acquires while already holding another,
// and which callees it invokes under a lock. The Finish pass then stitches
// the facts into one lock-order graph over the whole module (an edge
// A → B means "B was acquired while A was held", with acquisitions
// resolved through direct static callees, any call depth) and reports
// every cycle as a potential deadlock, naming each edge's acquisition
// chain so both sides of an inversion are visible in one message.
//
// Locks are identified by their declaration — the struct field or package
// variable — so the analysis is instance-insensitive: two locks of the
// same field on different values collapse to one node. Self-edges are
// therefore not reported (they are usually different instances), and
// function literals are separate analysis roots with no held locks, the
// same under-approximation lockheld makes.
func LockOrder() *Analyzer {
	a := &Analyzer{
		Name: "lockorder",
		Doc:  "no cycles in the module-wide lock acquisition order (potential deadlock)",
	}
	a.Run = func(pass *Pass) {
		for _, fd := range funcDecls(pass.Pkg) {
			if fd.Body == nil {
				continue
			}
			fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			facts := &lockFuncFacts{name: shortFuncName(fn)}
			w := &orderWalker{pass: pass, facts: facts}
			w.walkStmts(fd.Body.List, nil)
			// Function literals run on their own goroutine or schedule:
			// fresh roots, no inherited held set.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					w.walkStmts(fl.Body.List, nil)
				}
				return true
			})
			if len(facts.acquires) > 0 || len(facts.calls) > 0 {
				pass.ExportObjectFact(fn, facts)
			}
		}
	}
	a.Finish = finishLockOrder
	return a
}

// lockSite is one lock acquisition: the lock's declaration object, its
// human-readable name, and where it happened.
type lockSite struct {
	obj     types.Object
	display string
	pos     token.Pos
}

// lockEdge is a direct within-function ordering: to was acquired at pos
// while from was held.
type lockEdge struct {
	from, to lockSite
	pos      token.Pos
}

// lockCall is a call to a statically-resolved function, with the locks
// held at the call site (possibly none — the call graph also feeds the
// transitive acquire sets).
type lockCall struct {
	fn   *types.Func
	held []lockSite
	pos  token.Pos
}

// lockFuncFacts is the exported per-function summary.
type lockFuncFacts struct {
	name     string
	acquires []lockSite
	edges    []lockEdge
	calls    []lockCall
}

// orderWalker walks one function, tracking the held-lock set along each
// structural path (clone at branches, intersect at merges — the same
// under-approximation as lockheld, so manual unlock-and-return branches
// never fabricate edges).
type orderWalker struct {
	pass  *Pass
	facts *lockFuncFacts
}

// heldSet is the ordered list of currently held locks.
type heldSet []lockSite

func (h heldSet) clone() heldSet { return append(heldSet(nil), h...) }

func (h heldSet) remove(obj types.Object) heldSet {
	out := h[:0:len(h)]
	for _, s := range h {
		if s.obj != obj {
			out = append(out, s)
		}
	}
	return out
}

// intersect keeps locks held in both sets, preserving h's order.
func (h heldSet) intersect(o heldSet) heldSet {
	var out heldSet
	for _, s := range h {
		for _, t := range o {
			if s.obj == t.obj {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// lockIdent resolves the mutex operand of a Lock/Unlock selector call to
// the lock's identity object and display name. For "x.mu.Lock()" the
// identity is the mu field's declaration (shared by every instance); for
// a package-level "mu.Lock()" it is the variable; for a promoted
// "s.Lock()" on an embedded mutex it falls back to the receiver's named
// type.
func lockIdent(pass *Pass, sel *ast.SelectorExpr) (types.Object, string, bool) {
	info := pass.Pkg.Info
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		obj := info.Uses[x.Sel]
		if s, ok := info.Selections[x]; ok && s.Obj() != nil {
			obj = s.Obj()
		}
		if obj == nil {
			return nil, "", false
		}
		display := obj.Name()
		if tv, ok := info.Types[x.X]; ok {
			display = namedTypeDisplay(tv.Type) + "." + obj.Name()
		} else if pn, isPkg := info.Uses[firstIdent(x.X)].(*types.PkgName); isPkg && pn != nil {
			display = pn.Imported().Name() + "." + obj.Name()
		}
		return obj, display, true
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if obj == nil {
			return nil, "", false
		}
		display := obj.Name()
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			display = obj.Pkg().Name() + "." + obj.Name()
		}
		return obj, display, true
	default:
		// Promoted embedded mutex or an expression we cannot key: use the
		// operand type's declaration when it is named.
		if tv, ok := info.Types[sel.X]; ok {
			t := tv.Type
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
			}
			if named, isNamed := t.(*types.Named); isNamed {
				return named.Obj(), namedTypeDisplay(tv.Type), true
			}
		}
		return nil, "", false
	}
}

// firstIdent returns e when it is an identifier, else nil.
func firstIdent(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

// namedTypeDisplay renders a (possibly pointered) named type as
// "pkg.Type"; other types fall back to their string form.
func namedTypeDisplay(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name()
		}
		return obj.Name()
	}
	return t.String()
}

// shortFuncName renders fn as "pkg.Name" or "(*pkg.Type).Name".
func shortFuncName(fn *types.Func) string {
	if rpkg, rname, ok := recvTypeName(fn); ok {
		base := rname
		if i := strings.LastIndex(rpkg, "/"); i >= 0 {
			rpkg = rpkg[i+1:]
		}
		return "(*" + rpkg + "." + base + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// lockOp classifies a call as a sync.Mutex/RWMutex Lock/Unlock variant.
func (w *orderWalker) lockOp(call *ast.CallExpr) (op string, site lockSite, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", lockSite{}, false
	}
	fn, _ := w.pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", lockSite{}, false
	}
	rpkg, rname, hasRecv := recvTypeName(fn)
	if !hasRecv || rpkg != "sync" || (rname != "Mutex" && rname != "RWMutex") {
		return "", lockSite{}, false
	}
	name := fn.Name()
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		obj, display, okID := lockIdent(w.pass, sel)
		if !okID {
			return "", lockSite{}, false
		}
		return name, lockSite{obj: obj, display: display, pos: call.Pos()}, true
	}
	return "", lockSite{}, false
}

// recordAcquire notes an acquisition: its own fact, plus a direct edge
// from every currently held lock.
func (w *orderWalker) recordAcquire(site lockSite, held heldSet) {
	w.facts.acquires = append(w.facts.acquires, site)
	for _, h := range held {
		if h.obj != site.obj {
			w.facts.edges = append(w.facts.edges, lockEdge{from: h, to: site, pos: site.pos})
		}
	}
}

// scanExpr records lock-relevant calls inside an arbitrary expression:
// acquisitions in call arguments and resolvable callees with the current
// held set. Function literals are separate roots and skipped here.
func (w *orderWalker) scanExpr(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if op, site, ok := w.lockOp(n); ok {
				switch op {
				case "Lock", "RLock":
					// An acquisition inside an expression (rare) still
					// orders after the held locks, but the held set for
					// subsequent statements is handled by applyCall on
					// statement-level calls only.
					w.recordAcquire(site, held)
				}
				return true
			}
			if fn := callee(w.pass, n); fn != nil {
				w.facts.calls = append(w.facts.calls, lockCall{fn: fn, held: held.clone(), pos: n.Pos()})
			}
		}
		return true
	})
}

// applyCall processes a statement-level call, returning the new held set.
func (w *orderWalker) applyCall(call *ast.CallExpr, held heldSet) heldSet {
	if op, site, ok := w.lockOp(call); ok {
		switch op {
		case "Lock", "RLock":
			w.recordAcquire(site, held)
			return append(held, site)
		case "Unlock", "RUnlock":
			return held.remove(site.obj)
		}
		return held
	}
	w.scanExpr(call, held)
	return held
}

// walkStmts walks a statement list, threading the held set; it returns
// (finalHeld, terminated).
func (w *orderWalker) walkStmts(list []ast.Stmt, held heldSet) (heldSet, bool) {
	for _, s := range list {
		var term bool
		held, term = w.walkStmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *orderWalker) walkStmt(s ast.Stmt, held heldSet) (heldSet, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			return w.applyCall(call, held), false
		}
		w.scanExpr(s.X, held)
	case *ast.SendStmt:
		w.scanExpr(s.Chan, held)
		w.scanExpr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.scanExpr(e, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.scanExpr(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to the function's end —
		// exactly what the held set already models — and other deferred
		// calls run with whatever is held then; approximate with the
		// current held set for resolvable callees.
		if op, _, ok := w.lockOp(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return held, false
		}
		w.scanExpr(s.Call, held)
	case *ast.GoStmt:
		// The goroutine runs with its own empty held set; its closure (if
		// a literal) is walked as a separate root. A named callee still
		// enters the call graph, with no held locks.
		if fn := callee(w.pass, s.Call); fn != nil {
			w.facts.calls = append(w.facts.calls, lockCall{fn: fn, pos: s.Call.Pos()})
		}
		for _, arg := range s.Call.Args {
			w.scanExpr(arg, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, held)
		}
		return held, true
	case *ast.BranchStmt:
		return held, true
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held)
		bodyHeld, bodyTerm := w.walkStmts(s.Body.List, held.clone())
		elseHeld, elseTerm := held.clone(), false
		if s.Else != nil {
			elseHeld, elseTerm = w.walkStmt(s.Else, elseHeld)
		}
		switch {
		case bodyTerm && elseTerm:
			return held, true
		case bodyTerm:
			return elseHeld, false
		case elseTerm:
			return bodyHeld, false
		default:
			return bodyHeld.intersect(elseHeld), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held)
		w.walkStmts(s.Body.List, held.clone())
		if s.Post != nil {
			w.walkStmt(s.Post, held.clone())
		}
	case *ast.RangeStmt:
		w.scanExpr(s.X, held)
		w.walkStmts(s.Body.List, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		w.scanExpr(s.Tag, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, held.clone())
			}
		}
	}
	return held, false
}

// orderEdge is one aggregated lock-order graph edge with a representative
// acquisition site and the call chain that reaches it.
type orderEdge struct {
	from, to types.Object
	pos      token.Pos
	posn     token.Position
	chain    string // e.g. "in (*service.Server).Submit" or "via (*cluster.Router).route → (*cluster.Membership).Snapshot"
}

// finishLockOrder assembles the module lock-order graph from the
// per-function facts and reports each acquisition cycle once.
func finishLockOrder(mp *ModulePass) {
	byFn := map[*types.Func]*lockFuncFacts{}
	for obj, f := range mp.AllObjectFacts() {
		fn, ok := obj.(*types.Func)
		facts, okF := f.(*lockFuncFacts)
		if ok && okF {
			byFn[fn] = facts
		}
	}

	// Transitive acquire sets: every lock a function may take, directly
	// or through any chain of statically resolved callees, with one
	// representative chain + site per lock.
	type acq struct {
		site  lockSite
		chain []string // function names from the entry function down to the acquirer
	}
	memo := map[*types.Func]map[types.Object]acq{}
	onStack := map[*types.Func]bool{}
	var transAcq func(fn *types.Func) map[types.Object]acq
	transAcq = func(fn *types.Func) map[types.Object]acq {
		if m, ok := memo[fn]; ok {
			return m
		}
		if onStack[fn] {
			return nil // recursion: the cycle's other pass covers it
		}
		facts := byFn[fn]
		if facts == nil {
			return nil
		}
		onStack[fn] = true
		out := map[types.Object]acq{}
		for _, s := range facts.acquires {
			if _, ok := out[s.obj]; !ok {
				out[s.obj] = acq{site: s, chain: []string{facts.name}}
			}
		}
		for _, c := range facts.calls {
			for obj, sub := range transAcq(c.fn) {
				if _, ok := out[obj]; !ok {
					out[obj] = acq{site: sub.site, chain: append([]string{facts.name}, sub.chain...)}
				}
			}
		}
		onStack[fn] = false
		memo[fn] = out
		return out
	}

	// Build the edge set: direct within-function edges plus call edges —
	// anything a callee (transitively) acquires orders after every lock
	// held at the call site.
	display := map[types.Object]string{}
	note := func(s lockSite) {
		if d, ok := display[s.obj]; !ok || s.display < d {
			display[s.obj] = s.display
		}
	}
	edges := map[types.Object]map[types.Object]orderEdge{}
	addEdge := func(e orderEdge) {
		m := edges[e.from]
		if m == nil {
			m = map[types.Object]orderEdge{}
			edges[e.from] = m
		}
		old, ok := m[e.to]
		if !ok || posLess(e.posn, old.posn) {
			m[e.to] = e
		}
	}
	for _, facts := range byFn {
		for _, e := range facts.edges {
			note(e.from)
			note(e.to)
			addEdge(orderEdge{
				from: e.from.obj, to: e.to.obj,
				pos: e.pos, posn: mp.Position(e.pos),
				chain: "in " + facts.name,
			})
		}
		for _, c := range facts.calls {
			if len(c.held) == 0 {
				continue
			}
			for obj, sub := range transAcq(c.fn) {
				for _, h := range c.held {
					if h.obj == obj {
						continue
					}
					note(h)
					note(sub.site)
					addEdge(orderEdge{
						from: h.obj, to: obj,
						pos: c.pos, posn: mp.Position(c.pos),
						chain: "via " + strings.Join(append([]string{facts.name}, sub.chain...), " → "),
					})
				}
			}
		}
	}

	reportLockCycles(mp, edges, display)
}

// posLess orders source positions.
func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// reportLockCycles enumerates the simple cycles of the lock-order graph
// (bounded length — lock graphs are tiny) and reports each once, at the
// first edge of its canonical rotation, with every edge's acquisition
// site and chain in the message.
func reportLockCycles(mp *ModulePass, edges map[types.Object]map[types.Object]orderEdge, display map[types.Object]string) {
	nodes := make([]types.Object, 0, len(edges))
	for n := range edges {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return display[nodes[i]] < display[nodes[j]] })

	const maxCycleLen = 6
	seen := map[string]bool{}
	var path []types.Object
	onPath := map[types.Object]bool{}

	var report func(cycle []types.Object)
	report = func(cycle []types.Object) {
		// Canonical rotation: start at the smallest display name.
		start := 0
		for i := range cycle {
			if display[cycle[i]] < display[cycle[start]] {
				start = i
			}
		}
		rot := append(append([]types.Object(nil), cycle[start:]...), cycle[:start]...)
		key := ""
		for _, n := range rot {
			key += display[n] + "→"
		}
		if seen[key] {
			return
		}
		seen[key] = true

		names := make([]string, 0, len(rot)+1)
		for _, n := range rot {
			names = append(names, display[n])
		}
		names = append(names, display[rot[0]])
		var parts []string
		for i := range rot {
			from, to := rot[i], rot[(i+1)%len(rot)]
			e := edges[from][to]
			parts = append(parts, fmt.Sprintf("%s acquired while holding %s at %s:%d (%s)",
				display[to], display[from], filepath.Base(e.posn.Filename), e.posn.Line, e.chain))
		}
		first := edges[rot[0]][rot[1%len(rot)]]
		mp.Reportf(first.pos, "potential deadlock: lock-order cycle %s: %s",
			strings.Join(names, " → "), strings.Join(parts, "; "))
	}

	var dfs func(start, cur types.Object)
	dfs = func(start, cur types.Object) {
		if len(path) > maxCycleLen {
			return
		}
		for _, nxt := range sortedTargets(edges[cur], display) {
			if nxt == start {
				report(append([]types.Object(nil), path...))
				continue
			}
			// Only visit nodes ordered after start so each cycle is found
			// from its smallest node exactly once.
			if onPath[nxt] || display[nxt] < display[start] {
				continue
			}
			onPath[nxt] = true
			path = append(path, nxt)
			dfs(start, nxt)
			path = path[:len(path)-1]
			delete(onPath, nxt)
		}
	}
	for _, n := range nodes {
		path = append(path[:0], n)
		onPath = map[types.Object]bool{n: true}
		dfs(n, n)
	}
}

// sortedTargets returns m's keys in display-name order for deterministic
// traversal.
func sortedTargets(m map[types.Object]orderEdge, display map[types.Object]string) []types.Object {
	out := make([]types.Object, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return display[out[i]] < display[out[j]] })
	return out
}
