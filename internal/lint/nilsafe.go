package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Nilsafe builds the analyzer enforcing the repo's nil-receiver contract:
// on the listed types (a map from package-path suffix to type names), a
// nil pointer is a valid disabled instance, so every exported
// pointer-receiver method must begin with an
//
//	if recv == nil { ... }
//
// guard as its first statement. Transitive nil-safety (calling another
// guarded method) is not enough: the contract is checked method by method
// so a refactor can never silently drop the guard.
func Nilsafe(targets map[string][]string) *Analyzer {
	a := &Analyzer{
		Name: "nilsafe",
		Doc:  "exported methods on nil-safe types must begin with a nil-receiver guard",
	}
	a.Run = func(pass *Pass) {
		var typeNames []string
		for suffix, names := range targets {
			if pathMatches(pass.Pkg.Path, suffix) {
				typeNames = append(typeNames, names...)
			}
		}
		if len(typeNames) == 0 {
			return
		}
		sort.Strings(typeNames)
		isTarget := func(name string) bool {
			for _, t := range typeNames {
				if t == name {
					return true
				}
			}
			return false
		}
		for _, fd := range funcDecls(pass.Pkg) {
			if fd.Recv == nil || len(fd.Recv.List) != 1 || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			field := fd.Recv.List[0]
			star, ok := field.Type.(*ast.StarExpr)
			if !ok {
				continue // value receiver: nil cannot reach it
			}
			base := star.X
			if idx, isIdx := base.(*ast.IndexExpr); isIdx {
				base = idx.X // generic receiver [T any]
			}
			id, ok := base.(*ast.Ident)
			if !ok || !isTarget(id.Name) {
				continue
			}
			if len(field.Names) == 0 || field.Names[0].Name == "_" {
				pass.Reportf(fd.Pos(), "exported method (*%s).%s has no named receiver, so it cannot nil-guard itself", id.Name, fd.Name.Name)
				continue
			}
			recv := field.Names[0].Name
			if !beginsWithNilGuard(fd.Body, recv) {
				pass.Reportf(fd.Pos(), "exported method (*%s).%s must begin with 'if %s == nil' — a nil *%s is a valid disabled %s", id.Name, fd.Name.Name, recv, id.Name, strings.ToLower(id.Name))
			}
		}
	}
	return a
}

// beginsWithNilGuard reports whether the body's first statement handles a
// nil receiver: an "if recv == nil" statement (the nil comparison may be
// the leftmost operand of an || chain — short-circuit evaluation runs it
// first), or a return whose sole result is a recv-vs-nil comparison (the
// "func (r *T) Enabled() bool { return r != nil }" shape).
func beginsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	switch s := body.List[0].(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			return false
		}
		cond := ast.Unparen(s.Cond)
		// Take the leftmost operand of any || chain.
		for {
			bin, ok := cond.(*ast.BinaryExpr)
			if !ok || bin.Op != token.LOR {
				break
			}
			cond = ast.Unparen(bin.X)
		}
		return isNilComparison(cond, recv, token.EQL)
	case *ast.ReturnStmt:
		return len(s.Results) == 1 &&
			(isNilComparison(ast.Unparen(s.Results[0]), recv, token.EQL) ||
				isNilComparison(ast.Unparen(s.Results[0]), recv, token.NEQ))
	}
	return false
}

// isNilComparison reports whether e is "recv <op> nil" or "nil <op> recv".
func isNilComparison(e ast.Expr, recv string, op token.Token) bool {
	bin, ok := e.(*ast.BinaryExpr)
	if !ok || bin.Op != op {
		return false
	}
	isIdent := func(e ast.Expr, name string) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == name
	}
	return (isIdent(bin.X, recv) && isIdent(bin.Y, "nil")) ||
		(isIdent(bin.X, "nil") && isIdent(bin.Y, recv))
}
