package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// SSEDisc builds the analyzer enforcing HTTP handler write discipline on
// every function that takes a net/http.ResponseWriter:
//
//   - no WriteHeader after the body has been written — the header is gone
//     with the first byte, the late call is a silent no-op plus a server
//     log line;
//   - Flush only on a complete SSE frame: when the last write before a
//     Flush is a known string literal, it must end with the "\n\n" frame
//     terminator, otherwise the client sees a torn event (writes the
//     analyzer cannot see through — helpers, encoders — are exempt);
//   - an unconditional `for {` loop that writes the response must observe
//     request cancellation somewhere in its body (ctx.Done() or
//     ctx.Err()), or it spins on a dead connection forever.
//
// The walk is structural and path-sensitive the same way lockheld is:
// state is cloned at branches and merged at joins, and a branch that
// terminates (return/break) drops out of the merge, so an early-return
// error path that writes its own status never taints the success path.
func SSEDisc() *Analyzer {
	a := &Analyzer{
		Name: "ssedisc",
		Doc:  "handler discipline: no WriteHeader after body writes, Flush only on complete SSE frames, write loops observe cancellation",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var ft *ast.FuncType
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					ft, body = fn.Type, fn.Body
				case *ast.FuncLit:
					ft, body = fn.Type, fn.Body
				default:
					return true
				}
				if body == nil {
					return true
				}
				writers := responseWriterParams(pass, ft)
				if len(writers) == 0 {
					return true
				}
				w := &sseWalker{pass: pass, writers: writers}
				w.walkStmts(body.List, sseState{})
				return true
			})
		}
	}
	return a
}

// responseWriterParams collects the parameter objects of type
// net/http.ResponseWriter.
func responseWriterParams(pass *Pass, ft *ast.FuncType) map[types.Object]bool {
	out := map[types.Object]bool{}
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := pass.Pkg.Info.Defs[name]
			if obj != nil && isNamedFrom(obj.Type(), "net/http", "ResponseWriter") {
				out[obj] = true
			}
		}
	}
	return out
}

// isNamedFrom reports whether t is the named type pkgPath.name.
func isNamedFrom(t types.Type, pkgPath, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// Frame classification of the most recent response write.
const (
	sseNone       = iota // nothing written yet
	sseOpaque            // written through a call the analyzer can't see into
	sseComplete          // literal write ending in "\n\n"
	sseIncomplete        // literal write not ending in "\n\n"
)

// sseState is the walk state along one control-flow path.
type sseState struct {
	wrote bool // any response-body write has happened
	last  int  // frame classification of the latest write
}

func mergeSSE(a, b sseState) sseState {
	out := sseState{wrote: a.wrote || b.wrote}
	if a.last == b.last {
		out.last = a.last
	} else {
		// The branches disagree about the frame boundary; treat the join
		// as opaque rather than flag a Flush that is fine on one path.
		out.last = sseOpaque
	}
	return out
}

type sseWalker struct {
	pass    *Pass
	writers map[types.Object]bool
}

// isWriter resolves an expression to one of the tracked ResponseWriter
// objects.
func (w *sseWalker) isWriter(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := w.pass.Pkg.Info.Uses[id]
	return obj != nil && w.writers[obj]
}

// walkStmts threads st through the statement list, returning the exit
// state and whether the path terminated (return / branch out).
func (w *sseWalker) walkStmts(list []ast.Stmt, st sseState) (sseState, bool) {
	for _, s := range list {
		var term bool
		st, term = w.walkStmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (w *sseWalker) walkStmt(s ast.Stmt, st sseState) (sseState, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return w.scanExpr(s.X, st), false
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			st = w.scanExpr(rhs, st)
		}
		// Track direct aliases: w2 := w keeps w2 under the same rules.
		if len(s.Lhs) == len(s.Rhs) {
			for i, rhs := range s.Rhs {
				if w.isWriter(rhs) {
					if id, ok := s.Lhs[i].(*ast.Ident); ok {
						if obj := w.pass.Pkg.Info.Defs[id]; obj != nil {
							w.writers[obj] = true
						}
					}
				}
			}
		}
		return st, false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st = w.scanExpr(v, st)
					}
				}
			}
		}
		return st, false
	case *ast.SendStmt:
		st = w.scanExpr(s.Chan, st)
		return w.scanExpr(s.Value, st), false
	case *ast.IncDecStmt:
		return w.scanExpr(s.X, st), false
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred calls run at an unknowable point of the write sequence
		// and goroutine bodies are separate flows; neither advances the
		// handler's own write state.
		return st, false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			st = w.scanExpr(r, st)
		}
		return st, true
	case *ast.BranchStmt:
		return st, true
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		st = w.scanExpr(s.Cond, st)
		thenSt, thenTerm := w.walkStmts(s.Body.List, st)
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = w.walkStmt(s.Else, st)
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return mergeSSE(thenSt, elseSt), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			st = w.scanExpr(s.Cond, st)
		}
		if s.Cond == nil && w.bodyWrites(s.Body) && !observesContext(w.pass, s.Body) {
			w.pass.Reportf(s.Pos(), "infinite response-write loop does not observe cancellation: select on ctx.Done() or check ctx.Err() in the loop body")
		}
		bodySt, _ := w.walkStmts(s.Body.List, st)
		return mergeSSE(st, bodySt), false
	case *ast.RangeStmt:
		st = w.scanExpr(s.X, st)
		bodySt, _ := w.walkStmts(s.Body.List, st)
		return mergeSSE(st, bodySt), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			st = w.scanExpr(s.Tag, st)
		}
		return w.walkClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		return w.walkClauses(s.Body, st)
	case *ast.SelectStmt:
		return w.walkClauses(s.Body, st)
	default:
		return st, false
	}
}

// walkClauses merges the case bodies of a switch/select; terminated
// clauses drop out, and the no-match fallthrough path keeps the entry
// state in the merge.
func (w *sseWalker) walkClauses(body *ast.BlockStmt, st sseState) (sseState, bool) {
	merged := st
	for _, c := range body.List {
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			list = c.Body
		case *ast.CommClause:
			list = c.Body
		}
		cSt, cTerm := w.walkStmts(list, st)
		if !cTerm {
			merged = mergeSSE(merged, cSt)
		}
	}
	return merged, false
}

// scanExpr processes every call inside e in source order, updating and
// returning the state. FuncLit bodies are separate flows and are skipped
// (they are analyzed on their own when they take a ResponseWriter).
func (w *sseWalker) scanExpr(e ast.Expr, st sseState) sseState {
	if e == nil {
		return st
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		st = w.applyCall(call, st)
		return true
	})
	return st
}

// applyCall classifies one call against the rules.
func (w *sseWalker) applyCall(call *ast.CallExpr, st sseState) sseState {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && w.isWriter(sel.X) {
		switch sel.Sel.Name {
		case "WriteHeader":
			if st.wrote {
				w.pass.Reportf(call.Pos(), "WriteHeader after the response body has been written: the status line was already sent with the first byte")
			}
			return st
		case "Write", "WriteString":
			st.wrote = true
			if len(call.Args) > 0 {
				st.last = classifyFrameLiteral(call.Args[0])
			} else {
				st.last = sseOpaque
			}
			return st
		default:
			// Header().Set and friends: not a body write.
			return st
		}
	}
	if fn := callee(w.pass, call); fn != nil {
		if rpkg, rname, ok := recvTypeName(fn); ok && rpkg == "net/http" && rname == "Flusher" && fn.Name() == "Flush" {
			if st.last == sseIncomplete {
				w.pass.Reportf(call.Pos(), "Flush mid-frame: the last write does not end an SSE frame (missing the \"\\n\\n\" terminator)")
			}
			return st
		}
	}
	// A call handed the writer may write through it: fmt.Fprint* with a
	// literal format is classified, anything else is an opaque write.
	for i, arg := range call.Args {
		if !w.isWriter(arg) {
			continue
		}
		st.wrote = true
		st.last = sseOpaque
		if fn := callee(w.pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && i == 0 && len(call.Args) > 1 {
			switch fn.Name() {
			case "Fprintf", "Fprint":
				st.last = classifyFrameLiteral(call.Args[1])
			case "Fprintln":
				// Fprintln appends a single "\n": a literal ending in "\n"
				// completes a frame, anything else known stays incomplete.
				if s, ok := stringLiteral(call.Args[1]); ok {
					if strings.HasSuffix(s, "\n") {
						st.last = sseComplete
					} else {
						st.last = sseIncomplete
					}
				}
			}
		}
		break
	}
	return st
}

// classifyFrameLiteral decides whether the written value is a literal that
// completes an SSE frame ("\n\n"-terminated), a literal that doesn't, or
// something the analyzer can't see through.
func classifyFrameLiteral(arg ast.Expr) int {
	s, ok := stringLiteral(arg)
	if !ok {
		return sseOpaque
	}
	if strings.HasSuffix(s, "\n\n") {
		return sseComplete
	}
	return sseIncomplete
}

// stringLiteral unwraps a string literal, looking through a []byte(...)
// conversion.
func stringLiteral(arg ast.Expr) (string, bool) {
	arg = ast.Unparen(arg)
	if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
		if at, ok := ast.Unparen(conv.Fun).(*ast.ArrayType); ok && at.Len == nil {
			if id, ok := at.Elt.(*ast.Ident); ok && id.Name == "byte" {
				arg = ast.Unparen(conv.Args[0])
			}
		}
	}
	lit, ok := arg.(*ast.BasicLit)
	if !ok || lit.Kind.String() != "STRING" {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// bodyWrites reports whether the block writes the response on any path.
func (w *sseWalker) bodyWrites(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && w.isWriter(sel.X) {
			if sel.Sel.Name == "Write" || sel.Sel.Name == "WriteString" {
				found = true
				return false
			}
		}
		for _, arg := range call.Args {
			if w.isWriter(arg) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// observesContext reports whether the block calls Done() or Err() on a
// context.Context anywhere — the cancellation checks rule C accepts.
func observesContext(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Done" && sel.Sel.Name != "Err" {
			return true
		}
		if tv, ok := pass.Pkg.Info.Types[sel.X]; ok && isContextType(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}
