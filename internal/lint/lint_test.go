package lint_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRe extracts the backtick-quoted expectation patterns from a
// "// want `...` `...`" comment.
var wantRe = regexp.MustCompile("`([^`]+)`")

// expectation is one unmatched want pattern.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// parseWants scans every fixture file in dir for "// want" comments and
// returns the expected diagnostics keyed by (file, line).
func parseWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			i := strings.Index(text, "// want ")
			if i < 0 {
				continue
			}
			for _, m := range wantRe.FindAllStringSubmatch(text[i:], -1) {
				wants = append(wants, &expectation{file: path, line: line, re: regexp.MustCompile(m[1])})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return wants
}

// runFixture loads one testdata package, runs the analyzers, and verifies
// the diagnostics against the fixture's want comments: every finding must
// be wanted and every want must be found.
func runFixture(t *testing.T, name, importPath string, analyzers []*lint.Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := lint.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags := lint.Run([]*lint.Package{pkg}, analyzers)
	wants := parseWants(t, dir)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", name)
	}

outer:
	for _, d := range diags {
		for _, w := range wants {
			if w.hit || !sameFile(w.file, d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				continue outer
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}

func TestNilsafeFixture(t *testing.T) {
	runFixture(t, "nilsafe", "fixture/nilsafe", []*lint.Analyzer{
		lint.Nilsafe(map[string][]string{"fixture/nilsafe": {"Recorder", "Window"}}),
	})
}

// TestClockSimFixture loads the fixture under an import path ending in
// internal/gpusim, so the *default* registry configuration applies — the
// same matching the CI gate uses on the real package.
func TestClockSimFixture(t *testing.T) {
	runFixture(t, "clocksim", "fixture/internal/gpusim", lint.Default())
}

// TestFlightNilsafeFixture loads the fixture under an import path ending
// in internal/flight, so the default registry's nilsafe coverage of
// *flight.Recorder and *flight.Engine applies — the same matching the CI
// gate uses on the real package.
func TestFlightNilsafeFixture(t *testing.T) {
	runFixture(t, "flightsafe", "fixture/internal/flight", lint.Default())
}

// TestSessionNilsafeFixture loads the fixture under an import path ending
// in internal/session, so the default registry's nilsafe coverage of
// *session.Store and *session.Warmer applies — both types are nil when
// sessions or warming are disabled, and every exported method must be a
// safe no-op on the nil receiver.
func TestSessionNilsafeFixture(t *testing.T) {
	runFixture(t, "sessionsafe", "fixture/internal/session", lint.Default())
}

func TestClockParamFixture(t *testing.T) {
	runFixture(t, "clockparam", "fixture/clockparam", []*lint.Analyzer{
		lint.ClockDiscipline(nil, []string{"clockparam.Tick"}),
	})
}

func TestHotpathFixture(t *testing.T) {
	runFixture(t, "hotpath", "fixture/hotpath", []*lint.Analyzer{lint.Hotpath()})
}

// TestCtxflowFixture also exercises the //advect:nolint escape hatch:
// well-formed directives suppress, malformed or unknown ones are findings.
func TestCtxflowFixture(t *testing.T) {
	runFixture(t, "ctxflow", "fixture/ctxflow", lint.Default())
}

func TestLockheldFixture(t *testing.T) {
	runFixture(t, "lockheld", "fixture/lockheld", []*lint.Analyzer{lint.LockHeld()})
}

// TestLockOrderFixture seeds an A→B/B→A inversion across two files — one
// direct, one through a call chain — and expects a single cycle report
// naming both acquisition paths.
func TestLockOrderFixture(t *testing.T) {
	runFixture(t, "lockorder", "fixture/lockorder", []*lint.Analyzer{lint.LockOrder()})
}

func TestGoroutineLifeFixture(t *testing.T) {
	runFixture(t, "goroutinelife", "fixture/goroutinelife", []*lint.Analyzer{lint.GoroutineLife()})
}

func TestSSEDiscFixture(t *testing.T) {
	runFixture(t, "ssedisc", "fixture/ssedisc", []*lint.Analyzer{lint.SSEDisc()})
}

// TestNolintEdgeFixture covers the corners of the escape hatch — block
// comments, directive above vs trailing, two directives chained on one
// line — under the default registry, loaded as an internal/gpusim path so
// one line can trip lockheld and clockdiscipline at once.
func TestNolintEdgeFixture(t *testing.T) {
	runFixture(t, "nolintedge", "fixture/internal/gpusim", lint.Default())
}

// TestRepoClean is the in-process version of the CI gate: the default
// registry over the whole module must report nothing. Any intentional
// exception must carry an audited //advect:nolint directive instead.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module from source")
	}
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	for _, d := range lint.Run(pkgs, lint.Default()) {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

// TestDefaultRegistry pins the analyzer set: the CI gate's coverage is
// part of the contract.
func TestDefaultRegistry(t *testing.T) {
	var names []string
	for _, a := range lint.Default() {
		names = append(names, a.Name)
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc line", a.Name)
		}
	}
	want := []string{"nilsafe", "clockdiscipline", "hotpath", "ctxflow", "lockheld", "lockorder", "goroutinelife", "ssedisc"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("registry = %v, want %v", names, want)
	}
}
