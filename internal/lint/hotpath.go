package lint

import (
	"go/ast"
	"go/types"
)

// Hotpath builds the analyzer enforcing the //advect:hotpath contract:
// functions on the span-record and Observe paths — the ones the ci.sh
// allocation benchmarks guard — may not call into fmt, may not allocate
// maps or slices via composite literals, may not append into anything but
// their own operand (s = append(s, ...) is amortized in-place growth;
// any other shape allocates a fresh backing array), and may not defer
// (a deferred call costs on every invocation, hot or not).
func Hotpath() *Analyzer {
	a := &Analyzer{
		Name: "hotpath",
		Doc:  "//advect:hotpath functions may not call fmt, allocate map/slice literals, use un-hinted append, or defer",
	}
	a.Run = func(pass *Pass) {
		for _, fd := range funcDecls(pass.Pkg) {
			if fd.Body == nil || !HasDirective(fd, "hotpath") {
				continue
			}
			checkHotpath(pass, fd)
		}
	}
	return a
}

func checkHotpath(pass *Pass, fd *ast.FuncDecl) {
	// Appends of the shape x = append(x, ...) are exempt: collect them
	// first so the expression walk below can skip exactly those calls.
	selfAppend := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || len(call.Args) == 0 {
				continue
			}
			if types.ExprString(as.Lhs[i]) == types.ExprString(call.Args[0]) {
				selfAppend[call] = true
			}
		}
		return true
	})

	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "hot path %s uses defer: the deferred-call overhead is paid on every invocation", name)
		case *ast.CompositeLit:
			tv, ok := pass.Pkg.Info.Types[n]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "hot path %s allocates a map literal", name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "hot path %s allocates a slice literal", name)
			}
		case *ast.CallExpr:
			if isBuiltinAppend(pass, n) {
				if !selfAppend[n] {
					pass.Reportf(n.Pos(), "hot path %s uses un-hinted append: only 's = append(s, ...)' reuses its backing array", name)
				}
				return true
			}
			if fn := callee(pass, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				pass.Reportf(n.Pos(), "hot path %s calls fmt.%s: formatting allocates and is banned on hot paths", name, fn.Name())
			}
		}
		return true
	})
}

// isBuiltinAppend reports whether the call invokes the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}
