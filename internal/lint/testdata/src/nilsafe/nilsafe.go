// Package nilsafe is a lint fixture: Recorder and Window are configured as
// nil-safe targets, Gauge is not.
package nilsafe

import "sync"

// Recorder mimics obs.Recorder: a nil *Recorder must be a valid disabled
// recorder.
type Recorder struct {
	mu    sync.Mutex
	spans []int
}

// Missing has no guard at all.
func (r *Recorder) Missing() int { // want `exported method \(\*Recorder\)\.Missing must begin with 'if r == nil'`
	return len(r.spans)
}

// LateGuard guards, but not as the first statement.
func (r *Recorder) LateGuard() int { // want `exported method \(\*Recorder\)\.LateGuard must begin with 'if r == nil'`
	n := 1
	if r == nil {
		return 0
	}
	return n + len(r.spans)
}

// WrongVar guards something that is not the receiver.
func (r *Recorder) WrongVar(p *int) int { // want `exported method \(\*Recorder\)\.WrongVar must begin with 'if r == nil'`
	if p == nil {
		return 0
	}
	return len(r.spans)
}

// NoName cannot guard itself: the receiver is unnamed.
func (*Recorder) NoName() int { // want `exported method \(\*Recorder\)\.NoName has no named receiver`
	return 0
}

// Guarded is the canonical form.
func (r *Recorder) Guarded() int {
	if r == nil {
		return 0
	}
	return len(r.spans)
}

// Swapped writes the comparison nil-first; still a guard.
func (r *Recorder) Swapped() int {
	if nil == r {
		return 0
	}
	return len(r.spans)
}

// OrChain guards as the leftmost operand of an || chain; short-circuit
// evaluation runs the nil check first.
func (r *Recorder) OrChain(n int) int {
	if r == nil || n < 0 {
		return 0
	}
	return n + len(r.spans)
}

// Enabled-style single-expression bodies count as guards too.
func (r *Recorder) Enabled() bool { return r != nil }

// lower is unexported: callers inside the package guard for it.
func (r *Recorder) lower() int {
	return len(r.spans)
}

// ByValue takes the receiver by value; nil cannot reach it.
func (r Recorder) ByValue() int {
	return len(r.spans)
}

// Window is the second configured target.
type Window struct {
	count int
}

// Observe is missing its guard.
func (w *Window) Observe(v int) { // want `exported method \(\*Window\)\.Observe must begin with 'if w == nil'`
	w.count += v
}

// Count has one.
func (w *Window) Count() int {
	if w == nil {
		return 0
	}
	return w.count
}

// Gauge is not a configured nil-safe type: no guard required.
type Gauge struct {
	v int
}

// Value needs no guard.
func (g *Gauge) Value() int {
	return g.v
}
