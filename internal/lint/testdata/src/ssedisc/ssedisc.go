// Package ssedisc exercises the handler write-discipline analyzer: header
// ordering, SSE frame boundaries at Flush, and cancellation observation in
// infinite write loops.
package ssedisc

import (
	"fmt"
	"net/http"
)

// lateHeader writes the body first: the status line already went out.
func lateHeader(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte("body"))
	w.WriteHeader(http.StatusOK) // want `WriteHeader after the response body has been written`
}

// okOrder is the correct sequence.
func okOrder(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusTeapot)
	w.Write([]byte("body"))
}

// branches is clean: the error path writes and returns, so no path has a
// write before the success WriteHeader.
func branches(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/err" {
		w.Write([]byte("oops"))
		return
	}
	w.WriteHeader(http.StatusOK)
}

// helperWrite is clean order-wise but marks the writer written: a helper
// handed the writer may emit the body.
func helperWrite(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintf(w, "hello %s", r.URL.Path)
	w.WriteHeader(http.StatusOK) // want `WriteHeader after the response body has been written`
}

// midFrameFlush flushes half an SSE event: the literal lacks the "\n\n"
// frame terminator.
func midFrameFlush(w http.ResponseWriter, r *http.Request) {
	f, ok := w.(http.Flusher)
	if !ok {
		return
	}
	fmt.Fprintf(w, "data: %d\n", 1)
	f.Flush() // want `Flush mid-frame`
}

// frameFlush flushes a complete frame.
func frameFlush(w http.ResponseWriter, r *http.Request) {
	f, ok := w.(http.Flusher)
	if !ok {
		return
	}
	fmt.Fprintf(w, "data: %d\n\n", 1)
	f.Flush()
}

// opaqueFlush is exempt: the analyzer cannot see into frame, so it does
// not second-guess the flush.
func opaqueFlush(w http.ResponseWriter, r *http.Request, frame []byte) {
	f, ok := w.(http.Flusher)
	if !ok {
		return
	}
	w.Write(frame)
	f.Flush()
}

// spinLoop streams forever without ever noticing the client hung up.
func spinLoop(w http.ResponseWriter, r *http.Request) {
	for { // want `infinite response-write loop does not observe cancellation`
		w.Write([]byte("data: x\n\n"))
	}
}

// ctxLoop is the correct streaming shape: every iteration checks the
// request context.
func ctxLoop(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		w.Write([]byte("data: x\n\n"))
	}
}

// boundedLoop is exempt from the cancellation rule: it terminates on its
// own.
func boundedLoop(w http.ResponseWriter, r *http.Request, rows []string) {
	for _, row := range rows {
		fmt.Fprintln(w, row)
	}
}
