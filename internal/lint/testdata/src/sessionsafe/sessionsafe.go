// Package session is a lint fixture loaded under an import path ending
// in internal/session, so the default registry's nilsafe configuration —
// the one the CI gate applies to the real package — covers Store and
// Warmer here. Both are nil-tolerant by contract: a server without a
// -sessions directory holds a nil *Store, and a server without -warm
// holds a nil *Warmer, and every exported method must degrade to a
// no-op rather than panic.
package session

import "sync"

// Store mimics session.Store: a nil *Store is "sessions disabled".
type Store struct {
	mu    sync.Mutex
	dir   string
	steps map[string][]int64
}

// Dir is missing its guard.
func (s *Store) Dir() string { // want `exported method \(\*Store\)\.Dir must begin with 'if s == nil'`
	return s.dir
}

// Latest guards correctly.
func (s *Store) Latest(fp string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	steps := s.steps[fp]
	if len(steps) == 0 {
		return 0, false
	}
	return steps[len(steps)-1], true
}

// Enabled-style single-expression bodies count as guards.
func (s *Store) Enabled() bool { return s != nil }

// prune is unexported: callers inside the package guard for it.
func (s *Store) prune(fp string, retain int) {
	if len(s.steps[fp]) > retain {
		s.steps[fp] = s.steps[fp][:retain]
	}
}

// Warmer mimics session.Warmer, the second covered type.
type Warmer struct {
	warmed map[string]bool
	shed   int64
}

// NoteShed guards something that is not the receiver.
func (w *Warmer) NoteShed(counter *int64) { // want `exported method \(\*Warmer\)\.NoteShed must begin with 'if w == nil'`
	if counter == nil {
		return
	}
	w.shed++
	*counter++
}

// WasWarmed guards as the leftmost operand of an || chain.
func (w *Warmer) WasWarmed(key string) bool {
	if w == nil || key == "" {
		return false
	}
	return w.warmed[key]
}
