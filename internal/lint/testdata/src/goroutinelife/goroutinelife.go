// Package goroutinelife exercises the goroutine-lifecycle analyzer: every
// accepted tie form stays clean, untied launches are flagged, and the
// audited nolint escape hatch suppresses.
package goroutinelife

import (
	"context"
	"sync"
)

func untied() {
	go func() { // want `goroutine is not tied to a lifecycle`
		println("leak")
	}()
}

// ctxTied observes cancellation directly.
func ctxTied(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// ctxArg hands the context to the callee: tied even though the callee's
// body is not inspected for this form.
func ctxArg(ctx context.Context) {
	go run(ctx)
}

func run(ctx context.Context) {}

// wgTied signals a WaitGroup.
func wgTied(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// doneTied closes a completion channel.
func doneTied(done chan struct{}) {
	go func() {
		close(done)
	}()
}

// sendTied delivers its result over a channel.
func sendTied(ch chan int) {
	go func() {
		ch <- 1
	}()
}

// rangeTied drains a work channel: the channel's close is its stop signal.
func rangeTied(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// startNamed launches a same-package method whose body is inspected one
// level deep: loop blocks on the done channel, so the launch is tied.
func startNamed(w *Worker) {
	go w.loop()
}

type Worker struct {
	done chan struct{}
}

func (w *Worker) loop() {
	<-w.done
}

// leakNamed launches a named callee with no lifecycle signal in its body.
func leakNamed() {
	go spin() // want `goroutine is not tied to a lifecycle`
}

func spin() {
	for i := 0; i < 1e9; i++ {
		_ = i
	}
}

// audited demonstrates the escape hatch: the launch is deliberately
// untied and says why.
func audited() {
	go func() { //advect:nolint goroutinelife fixture exercises the audited escape hatch
		println("audited")
	}()
}
