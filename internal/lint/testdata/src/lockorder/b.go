package lockorder

import "sync"

// ba establishes the muB → muA ordering indirectly: helper acquires muA,
// and ba calls it with muB held. The Finish pass resolves the chain.
func (s *Store) ba() {
	s.muB.Lock()
	defer s.muB.Unlock()
	s.helper()
}

func (s *Store) helper() {
	s.muA.Lock()
	s.muA.Unlock()
}

// spawned is clean: the goroutine runs on its own schedule, so the locks
// its body takes are not ordered after muB.
func (s *Store) spawned(done chan struct{}) {
	s.muB.Lock()
	defer s.muB.Unlock()
	go func() {
		s.muA.Lock()
		s.muA.Unlock()
		close(done)
	}()
}

// Node's nested lock of the same field on another instance collapses to a
// self-edge, which is skipped: instance-insensitive identity cannot tell
// parent from child, and hand-over-hand locking is a legitimate idiom.
type Node struct {
	mu   sync.Mutex
	next *Node
}

func (n *Node) lockBoth() {
	n.mu.Lock()
	n.next.mu.Lock()
	n.next.mu.Unlock()
	n.mu.Unlock()
}
