// Package lockorder seeds a two-file lock-order inversion: this file
// acquires muB while holding muA, b.go reaches muA under muB through a
// call chain, and the analyzer must stitch the two into one reported
// cycle naming both acquisition paths.
package lockorder

import "sync"

type Store struct {
	muA sync.Mutex
	muB sync.Mutex
}

// ab establishes the muA → muB ordering directly.
func (s *Store) ab() {
	s.muA.Lock()
	defer s.muA.Unlock()
	s.muB.Lock() // want `potential deadlock: lock-order cycle lockorder\.Store\.muA → lockorder\.Store\.muB → lockorder\.Store\.muA: .*in \(\*lockorder\.Store\)\.ab.*via \(\*lockorder\.Store\)\.ba → \(\*lockorder\.Store\)\.helper`
	s.muB.Unlock()
}

// bThenA is clean: muB is released before muA is taken, so no edge.
func (s *Store) bThenA() {
	s.muB.Lock()
	s.muB.Unlock()
	s.muA.Lock()
	s.muA.Unlock()
}
