// Package hotpath is a lint fixture for the //advect:hotpath contract.
package hotpath

import "fmt"

// Rec mimics an allocation-sensitive recorder.
type Rec struct {
	spans  []int
	labels map[string]int
}

// Bad trips every hotpath rule at least once.
//
//advect:hotpath
func (r *Rec) Bad(v int) string {
	defer release()                                          // want `hot path Bad uses defer`
	m := map[string]int{"v": v}                              // want `hot path Bad allocates a map literal`
	s := []int{v}                                            // want `hot path Bad allocates a slice literal`
	grown := append(r.spans, v)                              // want `hot path Bad uses un-hinted append`
	out := fmt.Sprintf("%d %d", v, len(m)+len(s)+len(grown)) // want `hot path Bad calls fmt\.Sprintf`
	return out
}

// Good stays on the allowed side of every rule: self-append, struct
// literal, no fmt, no defer.
//
//advect:hotpath
func (r *Rec) Good(v int) {
	if r == nil {
		return
	}
	r.spans = append(r.spans, v)
	p := point{x: v, y: v}
	r.spans[len(r.spans)-1] = p.x
}

type point struct{ x, y int }

// Cold has no directive: everything is permitted.
func (r *Rec) Cold(v int) string {
	defer release()
	r.labels = map[string]int{"v": v}
	other := append([]int(nil), r.spans...)
	return fmt.Sprint(len(other))
}

func release() {}
