// Package clockparam is a lint fixture for clockdiscipline's second rule:
// the package itself is ordinary wall-clock code, but the test configures
// "clockparam.Tick" as a virtual-clock type, so any function with a Tick
// parameter (or receiver) is virtual-clocked and may not read the wall
// clock.
package clockparam

import "time"

// Tick is the configured virtual-clock type.
type Tick float64

// Advance takes the virtual clock and reads the wall clock anyway.
func Advance(host Tick) Tick {
	t0 := time.Now() // want `time\.Now in a function that takes the virtual clock`
	_ = t0
	return host + 1
}

// Engine carries virtual time.
type Engine struct {
	avail Tick
}

// Acquire takes the clock via a parameter.
func (e *Engine) Acquire(ready Tick, dur Tick) Tick {
	_ = time.Since(time.Time{}) // want `time\.Since in a function that takes the virtual clock`
	if ready > e.avail {
		e.avail = ready
	}
	e.avail += dur
	return e.avail
}

// Variadic clocks count too.
func Sync(hosts ...Tick) Tick {
	now := time.Now() // want `time\.Now in a function that takes the virtual clock`
	_ = now
	var max Tick
	for _, h := range hosts {
		if h > max {
			max = h
		}
	}
	return max
}

// Wall has no virtual-clock parameter: wall reads are its business.
func Wall() time.Time {
	return time.Now()
}
