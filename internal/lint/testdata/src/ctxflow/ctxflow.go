// Package ctxflow is a lint fixture for context threading and for the
// //advect:nolint escape hatch itself.
package ctxflow

import "context"

func helper(ctx context.Context) error { return ctx.Err() }

// mintsRoot creates a root context in library code.
func mintsRoot() error {
	return helper(context.Background()) // want `context\.Background outside cmd/, tests, and main`
}

// mintsTODO is no better.
func mintsTODO() error {
	return helper(context.TODO()) // want `context\.TODO outside cmd/, tests, and main`
}

// severs has a context and still mints a fresh root for its callee.
func severs(ctx context.Context) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return helper(context.Background()) // want `severs receives a context but mints context\.Background`
}

// ignores never touches its context but calls a context-accepting callee.
func ignores(ctx context.Context) error { // want `ignores ignores its context parameter ctx`
	return helper(context.TODO()) // want `ignores receives a context but mints context\.TODO`
}

// threads is the correct shape.
func threads(ctx context.Context) error {
	return helper(ctx)
}

// leaf takes a context it genuinely does not need yet and calls nothing
// that accepts one: clean.
func leaf(ctx context.Context) int {
	return 1
}

// audited is suppressed by a well-formed directive on the same line.
func audited() error {
	return helper(context.Background()) //advect:nolint ctxflow fixture exercises the audited escape hatch
}

// auditedAbove is suppressed by a directive on the line above.
func auditedAbove() error {
	//advect:nolint ctxflow fixture: a directive on its own line covers the next one
	return helper(context.Background())
}

// missingReason forgets the mandatory reason: the directive itself is a
// finding and suppresses nothing.
func missingReason() error {
	return helper(context.Background()) //advect:nolint ctxflow // want `missing its reason` `context\.Background outside`
}

// unknownAnalyzer names an analyzer the registry does not know.
func unknownAnalyzer() error {
	return helper(context.Background()) //advect:nolint nonesuch plausible reason text // want `unknown analyzer "nonesuch"` `context\.Background outside`
}
