// Package gpusim is a lint fixture loaded under the import path
// "fixture/internal/gpusim", so the default clockdiscipline configuration
// treats the whole package as simulated-time code: every wall-clock read
// is a finding.
package gpusim

import "time"

// Tick is the fixture's virtual clock value.
type Tick float64

// Step advances the simulation; reading the wall clock here would stamp
// virtual events with host time.
func Step(t Tick) Tick {
	now := time.Now() // want `time\.Now in a simulated-time package`
	_ = now
	return t + 1
}

// Elapsed measures with the wrong clock twice over.
func Elapsed(start time.Time) float64 {
	d := time.Since(start) // want `time\.Since in a simulated-time package`
	_ = time.Until(start)  // want `time\.Until in a simulated-time package`
	return d.Seconds()
}

// Pure touches no clock: clean.
func Pure(t Tick) Tick {
	return t * 2
}

// Formatting time values without reading the clock is fine.
func Label(t time.Time) string {
	return t.Format(time.RFC3339)
}
