// Package flight is a lint fixture loaded under an import path ending in
// internal/flight, so the default registry's nilsafe configuration — the
// one the CI gate applies to the real package — covers Recorder and
// Engine here.
package flight

import "sync"

// Recorder mimics flight.Recorder: a nil *Recorder must be a valid
// disabled recorder.
type Recorder struct {
	mu   sync.Mutex
	ring []int
}

// Add is missing its guard.
func (r *Recorder) Add(v int) { // want `exported method \(\*Recorder\)\.Add must begin with 'if r == nil'`
	r.mu.Lock()
	r.ring = append(r.ring, v)
	r.mu.Unlock()
}

// Len guards correctly.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.ring)
}

// Enabled-style single-expression bodies count as guards.
func (r *Recorder) Enabled() bool { return r != nil }

// Engine mimics flight.Engine, the second covered type.
type Engine struct {
	total int
}

// Observe guards something that is not the receiver.
func (e *Engine) Observe(v *int) { // want `exported method \(\*Engine\)\.Observe must begin with 'if e == nil'`
	if v == nil {
		return
	}
	e.total += *v
}

// Sweep guards as the leftmost operand of an || chain.
func (e *Engine) Sweep(n int) int {
	if e == nil || n < 0 {
		return 0
	}
	return e.total + n
}

// fire is unexported: callers inside the package guard for it.
func (e *Engine) fire(v int) {
	e.total += v
}
