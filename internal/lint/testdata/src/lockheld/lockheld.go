// Package lockheld is a lint fixture for the mutex discipline analyzer.
package lockheld

import (
	"sync"
	"time"
)

type box struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	ch   chan int
	q    []int
}

// sendUnderLock parks the goroutine on a full channel with the lock held.
func (b *box) sendUnderLock(v int) {
	b.mu.Lock()
	b.ch <- v // want `channel send while holding b\.mu`
	b.mu.Unlock()
}

// recvUnderLock blocks on an empty channel with the lock held.
func (b *box) recvUnderLock() int {
	b.mu.Lock()
	v := <-b.ch // want `channel receive while holding b\.mu`
	b.mu.Unlock()
	return v
}

// blockingSelect has no default clause: it parks under the lock.
func (b *box) blockingSelect() {
	b.mu.Lock()
	select { // want `select without default while holding b\.mu`
	case v := <-b.ch:
		b.q = append(b.q, v)
	}
	b.mu.Unlock()
}

// nonBlockingPublish is the sanctioned pattern: a select with a default
// never blocks, so the send under the lock is fine.
func (b *box) nonBlockingPublish(v int) {
	b.mu.Lock()
	select {
	case b.ch <- v:
	default:
	}
	b.mu.Unlock()
}

// leakyReturn exits with the mutex still held on the v > 0 path.
func (b *box) leakyReturn(v int) bool {
	b.mu.Lock()
	if v > 0 {
		return false // want `return while holding b\.mu`
	}
	b.mu.Unlock()
	return true
}

// earlyUnlockReturn unlocks on every path by hand: clean.
func (b *box) earlyUnlockReturn(v int) bool {
	b.mu.Lock()
	if v > 0 {
		b.mu.Unlock()
		return false
	}
	b.q = append(b.q, v)
	b.mu.Unlock()
	return true
}

// deferred pairs Lock with an immediate defer Unlock: clean however many
// returns follow.
func (b *box) deferred(v int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if v > 0 {
		return false
	}
	b.q = append(b.q, v)
	return true
}

// sleepy holds the lock across a sleep.
func (b *box) sleepy() {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want `call to time\.Sleep while holding b\.mu`
	b.mu.Unlock()
}

// waits holds the lock across a WaitGroup wait.
func (b *box) waits(wg *sync.WaitGroup) {
	b.mu.Lock()
	wg.Wait() // want `call to sync\.WaitGroup\.Wait while holding b\.mu`
	b.mu.Unlock()
}

// drains ranges over a channel — an unbounded block — under the lock.
func (b *box) drains() {
	b.mu.Lock()
	for v := range b.ch { // want `range over channel while holding b\.mu`
		b.q = append(b.q, v)
	}
	b.mu.Unlock()
}

// condWait is the sync.Cond idiom: Wait releases the mutex while parked,
// so looping on it under the lock is correct and exempt.
func (b *box) condWait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.q) == 0 {
		b.cond.Wait()
	}
}

// readLeak returns with the read lock still held on the non-empty path.
func (b *box) readLeak() int {
	b.rw.RLock()
	if len(b.q) > 0 {
		return b.q[0] // want `return while holding b\.rw \(RLock\)`
	}
	b.rw.RUnlock()
	return 0
}

// closures run on their own schedule: a send inside a func literal is not
// a send under the caller's lock, but the literal's own lock use is
// checked independently.
func (b *box) closures(v int) func() {
	b.mu.Lock()
	f := func() {
		b.mu.Lock()
		b.ch <- v // want `channel send while holding b\.mu`
		b.mu.Unlock()
	}
	b.mu.Unlock()
	return f
}
