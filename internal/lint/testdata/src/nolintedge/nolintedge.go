// Package nolintedge exercises the corners of the //advect:nolint escape
// hatch under the default registry. The fixture loads under an import path
// ending in internal/gpusim so clockdiscipline's sim-package ban applies,
// which lets one line trip two analyzers at once.
package nolintedge

import (
	"sync"
	"time"
)

type box struct {
	mu sync.Mutex
}

// chained: one line trips lockheld (Sleep under the lock) and
// clockdiscipline (wall read in a sim package); one comment carries both
// directives back to back.
func chained(b *box, deadline time.Time) {
	b.mu.Lock()
	time.Sleep(time.Until(deadline)) //advect:nolint lockheld fixture: chained directive, first half advect:nolint clockdiscipline fixture: chained directive, second half
	b.mu.Unlock()
}

// blockTrailing uses the block-comment form at the end of the flagged line.
func blockTrailing(b *box) {
	b.mu.Lock()
	time.Sleep(time.Millisecond) /* advect:nolint lockheld fixture: block-comment form, trailing */
	b.mu.Unlock()
}

// blockAbove uses the block-comment form on the line above.
func blockAbove(b *box) {
	b.mu.Lock()
	/* advect:nolint lockheld fixture: block-comment form, above */
	time.Sleep(time.Millisecond)
	b.mu.Unlock()
}

// lineAbove uses the line-comment form on the line above.
func lineAbove(b *box) {
	b.mu.Lock()
	//advect:nolint lockheld fixture: line form, above
	time.Sleep(time.Millisecond)
	b.mu.Unlock()
}

// unsuppressed pins that the analyzers really fire here: without a
// directive the same shape is a finding (and the wall read a second one).
func unsuppressed(b *box) {
	b.mu.Lock()
	time.Sleep(time.Until(time.Now())) // want `call to time.Sleep while holding b.mu` `time.Until in a simulated-time package` `time.Now in a simulated-time package`
	b.mu.Unlock()
}

// A directive must name a known analyzer, and must say why.
func badDirectives(b *box) {
	b.mu.Lock()
	time.Sleep(time.Millisecond) //advect:nolint nosuch because it is quiet // want `unknown analyzer "nosuch"` `call to time.Sleep while holding b.mu`
	b.mu.Unlock()
}

func reasonless(b *box) {
	b.mu.Lock()
	time.Sleep(time.Millisecond) //advect:nolint lockheld // want `missing its reason` `call to time.Sleep while holding b.mu`
	b.mu.Unlock()
}
