package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHeld builds the analyzer guarding the repo's mutex discipline: no
// blocking operation — channel send or receive outside a select with a
// default, a default-less select itself, a range over a channel,
// time.Sleep, or sync.WaitGroup.Wait — may run between a mutex Lock and
// its Unlock, and no path may return while the mutex is still held
// without a deferred Unlock. sync.Cond.Wait is exempt (it releases the
// mutex while parked; looping on it under the lock is the correct idiom),
// and a send inside a select that has a default clause is exempt (that is
// the non-blocking publish pattern).
//
// The check is a structural walk, not a full CFG: branch-local lock state
// merges by intersection, so a branch that unlocks and returns — the
// manual early-exit idiom — never false-positives the fallthrough path.
func LockHeld() *Analyzer {
	a := &Analyzer{
		Name: "lockheld",
		Doc:  "no blocking operation or lock-leaking return between mutex Lock and Unlock",
	}
	a.Run = func(pass *Pass) {
		for _, fd := range funcDecls(pass.Pkg) {
			if fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass}
			w.walkStmts(fd.Body.List, lockState{})
			// Every function literal is its own goroutine-agnostic
			// analysis root; the statement walk above never descends
			// into them.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					w.walkStmts(fl.Body.List, lockState{})
				}
				return true
			})
		}
	}
	return a
}

// heldLock is one mutex the current path has locked.
type heldLock struct {
	display  string // e.g. "m.mu" or "m.mu (RLock)"
	deferred bool   // a matching defer Unlock is pending
}

// lockState maps lock keys to held locks; cloned at every branch.
type lockState map[string]*heldLock

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		c := *v
		out[k] = &c
	}
	return out
}

// merge keeps only locks held on both paths (intersection — the walker
// under-approximates so manual unlock-and-return branches stay clean).
func merge(a, b lockState) lockState {
	out := lockState{}
	for k, va := range a {
		if vb, ok := b[k]; ok {
			c := *va
			c.deferred = va.deferred || vb.deferred
			out[k] = &c
		}
	}
	return out
}

type lockWalker struct {
	pass *Pass
}

// lockOp classifies a call as a mutex Lock/Unlock (or reader variants) and
// returns the state key and display name derived from the receiver
// expression.
func (w *lockWalker) lockOp(call *ast.CallExpr) (op, key, display string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	fn, _ := w.pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", "", "", false
	}
	rpkg, rname, hasRecv := recvTypeName(fn)
	if !hasRecv || rpkg != "sync" || (rname != "Mutex" && rname != "RWMutex") {
		return "", "", "", false
	}
	name := fn.Name()
	recvStr := types.ExprString(sel.X)
	switch name {
	case "Lock":
		return name, recvStr, recvStr, true
	case "Unlock":
		return name, recvStr, recvStr, true
	case "RLock":
		return name, recvStr + "#r", recvStr + " (RLock)", true
	case "RUnlock":
		return name, recvStr + "#r", recvStr + " (RLock)", true
	}
	return "", "", "", false
}

// isBlockingCall reports whether the call parks the goroutine: time.Sleep
// or sync.WaitGroup.Wait. sync.Cond.Wait is deliberately not here.
func (w *lockWalker) isBlockingCall(call *ast.CallExpr) (string, bool) {
	fn := callee(w.pass, call)
	if fn == nil {
		return "", false
	}
	if isFuncNamed(fn, "time", "Sleep") {
		return "time.Sleep", true
	}
	if rpkg, rname, ok := recvTypeName(fn); ok && rpkg == "sync" && rname == "WaitGroup" && fn.Name() == "Wait" {
		return "sync.WaitGroup.Wait", true
	}
	return "", false
}

// anyHeld returns the display name of one held lock, for messages.
func anyHeld(st lockState) (string, bool) {
	for _, v := range st {
		return v.display, true
	}
	return "", false
}

// scanExpr flags channel receives and blocking calls inside an expression
// while a lock is held. Function literals are skipped (they run later, on
// whatever goroutine calls them); selects never appear inside expressions.
func (w *lockWalker) scanExpr(e ast.Expr, st lockState) {
	if e == nil || len(st) == 0 {
		return
	}
	held, _ := anyHeld(st)
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.pass.Reportf(n.Pos(), "channel receive while holding %s", held)
			}
		case *ast.CallExpr:
			if name, ok := w.isBlockingCall(n); ok {
				w.pass.Reportf(n.Pos(), "call to %s while holding %s", name, held)
			}
		}
		return true
	})
}

// applyCall updates lock state for a Lock/Unlock call, or flags it as a
// blocking call, and scans its arguments.
func (w *lockWalker) applyCall(call *ast.CallExpr, st lockState) {
	if op, key, display, ok := w.lockOp(call); ok {
		switch op {
		case "Lock", "RLock":
			st[key] = &heldLock{display: display}
		case "Unlock", "RUnlock":
			delete(st, key)
		}
		return
	}
	w.scanExpr(call, st)
}

// walkStmts walks one statement list, mutating st along the path. It
// reports whether the path terminates (every way through returns or
// branches away).
func (w *lockWalker) walkStmts(list []ast.Stmt, st lockState) bool {
	for _, s := range list {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *lockWalker) walkStmt(s ast.Stmt, st lockState) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			w.applyCall(call, st)
		} else {
			w.scanExpr(s.X, st)
		}
	case *ast.SendStmt:
		if held, ok := anyHeld(st); ok {
			w.pass.Reportf(s.Pos(), "channel send while holding %s", held)
		}
		w.scanExpr(s.Value, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e, st)
		}
		for _, e := range s.Lhs {
			w.scanExpr(e, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.scanExpr(e, st)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.scanExpr(s.X, st)
	case *ast.DeferStmt:
		if op, key, _, ok := w.lockOp(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			if h, held := st[key]; held {
				h.deferred = true
			}
		}
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			w.scanExpr(arg, st)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, st)
		}
		for _, h := range st {
			if !h.deferred {
				w.pass.Reportf(s.Pos(), "return while holding %s: unlock on this path or 'defer %s.Unlock()' right after Lock", h.display, h.display)
			}
		}
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto: ends this structural path
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.scanExpr(s.Cond, st)
		bodySt := st.clone()
		bodyTerm := w.walkStmts(s.Body.List, bodySt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, elseSt)
		}
		switch {
		case bodyTerm && elseTerm:
			return true
		case bodyTerm:
			replace(st, elseSt)
		case elseTerm:
			replace(st, bodySt)
		default:
			replace(st, merge(bodySt, elseSt))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.scanExpr(s.Cond, st)
		body := st.clone()
		w.walkStmts(s.Body.List, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		if tv, ok := w.pass.Pkg.Info.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				if held, heldOK := anyHeld(st); heldOK {
					w.pass.Reportf(s.Pos(), "range over channel while holding %s", held)
				}
			}
		}
		w.scanExpr(s.X, st)
		body := st.clone()
		w.walkStmts(s.Body.List, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.scanExpr(s.Tag, st)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, st.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, st.clone())
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if held, ok := anyHeld(st); ok && !hasDefault {
			w.pass.Reportf(s.Pos(), "select without default while holding %s blocks under the lock", held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, st.clone())
			}
		}
	}
	return false
}

// replace overwrites dst's contents with src's.
func replace(dst, src lockState) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}
