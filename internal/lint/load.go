package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package of the module (or a test
// fixture directory): its syntax, its type information, and its import
// path, sharing one FileSet with every other package of the load.
type Package struct {
	Path  string // import path ("repro/internal/obs")
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// newInfo allocates the types.Info maps the analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// stdImporter builds the stdlib importer the loader delegates to for
// anything outside the module. The "source" compiler importer type-checks
// the standard library from GOROOT/src, so the tool needs no prebuilt
// export data; cgo is disabled so packages like net resolve to their pure
// Go fallbacks.
func stdImporter(fset *token.FileSet) types.Importer {
	build.Default.CgoEnabled = false
	return importer.ForCompiler(fset, "source", nil)
}

// moduleImporter resolves module-internal paths from the packages already
// type-checked this load and everything else via the source importer. The
// done map is written only between topo levels (never while checks are in
// flight) so concurrent same-level type-checking reads it without locks;
// the source importer underneath is not concurrency-safe and is
// serialized by mu.
type moduleImporter struct {
	mu   sync.Mutex
	std  types.Importer
	done map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.done[path]; ok {
		return p, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.std.Import(path)
}

// ModulePath reads the module path from root/go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mod := strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(mod); err == nil {
				mod = unq
			}
			if mod != "" {
				return mod, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// parseDir parses every non-test .go file of one directory into the fset.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadModule parses and type-checks every non-test package under root (the
// module root) and returns them in topological dependency order (imports
// before importers — the order the inter-procedural facts passes rely
// on). Packages that don't depend on each other type-check concurrently,
// level by level. testdata, hidden, and underscore-prefixed directories
// are skipped, exactly as the go tool skips them.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	// Discover package directories.
	type rawPkg struct {
		path    string
		files   []*ast.File
		imports []string
	}
	raw := map[string]*rawPkg{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := parseDir(fset, path)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		rp := &rawPkg{path: importPath, files: files}
		seen := map[string]bool{}
		for _, f := range files {
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				// The module root package's own path has no "/" suffix —
				// missing it would let an importer type-check first and
				// the source importer mint a second, incompatible
				// instance of the root package.
				if (p == modPath || strings.HasPrefix(p, modPath+"/")) && !seen[p] {
					seen[p] = true
					rp.imports = append(rp.imports, p)
				}
			}
		}
		raw[importPath] = rp
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Topologically order the module-internal dependency graph.
	paths := make([]string, 0, len(raw))
	for p := range raw {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []string
	var visit func(p string) error
	visit = func(p string) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", p)
		}
		state[p] = visiting
		deps := append([]string(nil), raw[p].imports...)
		sort.Strings(deps)
		for _, d := range deps {
			if _, ok := raw[d]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[p] = done
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	// Group the topological order into levels: a package's level is one
	// past its deepest module-internal dependency, so every package in a
	// level depends only on lower levels and the whole level can
	// type-check concurrently.
	level := map[string]int{}
	maxLevel := 0
	for _, p := range order {
		lv := 0
		for _, d := range raw[p].imports {
			if _, ok := raw[d]; ok && level[d]+1 > lv {
				lv = level[d] + 1
			}
		}
		level[p] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	buckets := make([][]string, maxLevel+1)
	for _, p := range order { // keeps the deterministic topo order within a level
		buckets[level[p]] = append(buckets[level[p]], p)
	}

	// Type-check level by level, packages within a level in parallel. The
	// FileSet is concurrency-safe; module-internal imports hit the done
	// map (complete for all lower levels), and stdlib imports serialize
	// through the locked source importer. Workers are capped at
	// GOMAXPROCS: on a single-core host the level degenerates to the
	// sequential walk with no goroutine or lock overhead.
	imp := &moduleImporter{std: stdImporter(fset), done: map[string]*types.Package{}}
	var pkgs []*Package
	for _, bucket := range buckets {
		checked := make([]*Package, len(bucket))
		errs := make([]error, len(bucket))
		checkOne := func(i int) {
			p := bucket[i]
			rp := raw[p]
			info := newInfo()
			conf := types.Config{Importer: imp}
			tpkg, err := conf.Check(p, fset, rp.files, info)
			if err != nil {
				errs[i] = fmt.Errorf("lint: type-checking %s: %w", p, err)
				return
			}
			checked[i] = &Package{Path: p, Fset: fset, Files: rp.files, Types: tpkg, Info: info}
		}
		if workers := min(runtime.GOMAXPROCS(0), len(bucket)); workers <= 1 {
			for i := range bucket {
				checkOne(i)
			}
		} else {
			next := make(chan int)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range next {
						checkOne(i)
					}
				}()
			}
			for i := range bucket {
				next <- i
			}
			close(next)
			wg.Wait()
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		for _, pkg := range checked {
			imp.done[pkg.Path] = pkg.Types
			pkgs = append(pkgs, pkg)
		}
	}
	// pkgs is in topological dependency order — the order Run's analyzers
	// rely on to export facts about callees before their callers appear.
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// import path. Fixture packages may import only the standard library; the
// analyzer tests use this to load testdata packages the module build never
// sees.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := newInfo()
	conf := types.Config{Importer: stdImporter(fset)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", dir, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
