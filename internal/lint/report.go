package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// JSONFinding is one diagnostic as a machine-readable record. File paths
// are module-root-relative so reports archived by CI compare across
// checkouts.
type JSONFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// JSONReport is the machine-readable result of one advectlint run: the
// analyzer set that ran, how many packages it saw, and every surviving
// finding in the same stable position order the text output uses — byte
// for byte reproducible for a given tree, so CI can archive and diff it.
type JSONReport struct {
	Tool      string        `json:"tool"`
	Module    string        `json:"module"`
	Packages  int           `json:"packages"`
	Analyzers []string      `json:"analyzers"`
	Findings  []JSONFinding `json:"findings"`
	Count     int           `json:"count"`
}

// NewJSONReport assembles the report for one run. root, when non-empty,
// relativizes finding paths; diags must already be sorted (Run's output
// is).
func NewJSONReport(module string, packages int, analyzers []*Analyzer, diags []Diagnostic, root string) JSONReport {
	rep := JSONReport{
		Tool:     "advectlint",
		Module:   module,
		Packages: packages,
		Findings: []JSONFinding{},
		Count:    len(diags),
	}
	for _, a := range analyzers {
		rep.Analyzers = append(rep.Analyzers, a.Name)
	}
	for _, d := range diags {
		file := d.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, file); err == nil {
				file = rel
			}
		}
		rep.Findings = append(rep.Findings, JSONFinding{
			File: file, Line: d.Pos.Line, Col: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	return rep
}

// WriteJSON emits the report as indented JSON with a trailing newline.
func (r JSONReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
