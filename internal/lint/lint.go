// Package lint is the project's static-analysis framework: a stdlib-only
// analogue of go/analysis (go/parser + go/ast + go/types + go/importer,
// no x/tools) that loads every package of the module, runs a registry of
// analyzers encoding project invariants — nil-safe recorder methods,
// wall-vs-virtual clock discipline, allocation-free hot paths, context
// threading, and lock-held blocking — and reports findings as
// file:line:col: [analyzer] message diagnostics.
//
// Two directive comments steer the analyzers:
//
//	//advect:hotpath
//	    on a function declaration marks it allocation-sensitive: the
//	    hotpath analyzer forbids fmt calls, map/slice literals, appends
//	    that do not reassign their own operand, and defer inside it.
//
//	//advect:nolint <analyzer> <reason>
//	    on (or immediately above) a flagged line suppresses that one
//	    analyzer's diagnostic. The reason is mandatory — an escape hatch
//	    without an audit trail is itself a finding — and naming an
//	    analyzer the registry does not know is flagged too.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant checker. Run inspects a single
// type-checked package and reports findings through the pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one (package, analyzer) pairing through a Run call.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// nolintDirective is one parsed //advect:nolint comment.
type nolintDirective struct {
	pos      token.Pos
	line     int    // line the directive suppresses findings on (its own)
	analyzer string // "" when malformed
	reason   string
}

const (
	nolintPrefix  = "//advect:nolint"
	hotpathMarker = "//advect:hotpath"
)

// HasDirective reports whether the function declaration carries the given
// //advect:<name> marker in its doc comment.
func HasDirective(fd *ast.FuncDecl, name string) bool {
	if fd.Doc == nil {
		return false
	}
	want := "//advect:" + name
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// parseNolints extracts every //advect:nolint directive from the package.
// A directive suppresses findings on its own source line, so it can sit at
// the end of the flagged line or on a line of its own immediately above.
func parseNolints(pkg *Package) []nolintDirective {
	var out []nolintDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, nolintPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, nolintPrefix)
				// A reason never embeds "//": anything after one is a
				// trailing comment (the fixtures' "// want" markers).
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				d := nolintDirective{pos: c.Pos(), line: pkg.Fset.Position(c.Pos()).Line}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					d.analyzer = fields[0]
					d.reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// Run executes every analyzer over every package, applies the nolint
// directives, validates the directives themselves, and returns the
// surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &pkgDiags}
			a.Run(pass)
		}
		nolints := parseNolints(pkg)
		// A directive covers its own line and the line below it, so both
		//   stmt // advect:nolint a r
		// and
		//   // advect:nolint a r
		//   stmt
		// work. Malformed or unknown directives become findings.
		suppress := map[[2]interface{}]bool{} // {line, analyzer}
		for _, d := range nolints {
			switch {
			case d.analyzer == "":
				pkgDiags = append(pkgDiags, Diagnostic{
					Pos: pkg.Fset.Position(d.pos), Analyzer: "nolint",
					Message: "malformed //advect:nolint: want \"//advect:nolint <analyzer> <reason>\"",
				})
			case !known[d.analyzer] && d.analyzer != "nolint":
				pkgDiags = append(pkgDiags, Diagnostic{
					Pos: pkg.Fset.Position(d.pos), Analyzer: "nolint",
					Message: fmt.Sprintf("//advect:nolint names unknown analyzer %q", d.analyzer),
				})
			case d.reason == "":
				pkgDiags = append(pkgDiags, Diagnostic{
					Pos: pkg.Fset.Position(d.pos), Analyzer: "nolint",
					Message: fmt.Sprintf("//advect:nolint %s is missing its reason: every suppression must say why", d.analyzer),
				})
			default:
				suppress[[2]interface{}{d.line, d.analyzer}] = true
				suppress[[2]interface{}{d.line + 1, d.analyzer}] = true
			}
		}
		for _, d := range pkgDiags {
			if suppress[[2]interface{}{d.Pos.Line, d.Analyzer}] {
				continue
			}
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
