// Package lint is the project's static-analysis framework: a stdlib-only
// analogue of go/analysis (go/parser + go/ast + go/types + go/importer,
// no x/tools) that loads every package of the module, runs a registry of
// analyzers encoding project invariants — nil-safe recorder methods,
// wall-vs-virtual clock discipline, allocation-free hot paths, context
// threading, lock-held blocking, module-wide lock ordering, goroutine
// lifecycles, and SSE/handler write discipline — and reports findings as
// file:line:col: [analyzer] message diagnostics.
//
// Analyzers come in two halves. Run inspects one type-checked package at
// a time; packages are presented in topological dependency order, so a
// Run pass may export object facts about the functions it has seen
// (Pass.ExportObjectFact) knowing its callees' packages were visited
// first. Finish, when set, runs once after every package, sees the whole
// module plus every exported fact (ModulePass), and is where
// inter-procedural analyzers like lockorder resolve their cross-package
// graphs.
//
// Two directive comments steer the analyzers:
//
//	//advect:hotpath
//	    on a function declaration marks it allocation-sensitive: the
//	    hotpath analyzer forbids fmt calls, map/slice literals, appends
//	    that do not reassign their own operand, and defer inside it.
//
//	//advect:nolint <analyzer> <reason>
//	    on (or immediately above) a flagged line suppresses that one
//	    analyzer's diagnostic. The reason is mandatory — an escape hatch
//	    without an audit trail is itself a finding — and naming an
//	    analyzer the registry does not know is flagged too. The block
//	    form "/* advect:nolint <analyzer> <reason> */" works in the same
//	    positions, and one comment may carry several directives back to
//	    back when one line trips more than one analyzer.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant checker. Run inspects a single
// type-checked package and reports findings through the pass; packages
// arrive in topological dependency order, so facts a Run pass exports
// about an object are visible when its importers are visited. Finish,
// when non-nil, runs once after the last package with the whole module
// and every fact in view — the inter-procedural half.
type Analyzer struct {
	Name   string
	Doc    string
	Run    func(*Pass)
	Finish func(*ModulePass)
}

// factKey scopes an exported fact to the analyzer that produced it, so
// two analyzers can annotate the same object independently.
type factKey struct {
	analyzer string
	obj      types.Object
}

// factSet is the shared inter-procedural fact store of one lint run.
type factSet map[factKey]any

// Pass carries one (package, analyzer) pairing through a Run call.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
	facts    factSet
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportObjectFact attaches an analyzer-scoped fact to obj — typically a
// *types.Func summary — for the Finish pass (or a later package's Run
// pass) to read. Object identity is shared across the whole load: the
// module loader type-checks every package against the same imported
// package instances, so a callee's *types.Func is the same object no
// matter which package the call site is in.
func (p *Pass) ExportObjectFact(obj types.Object, fact any) {
	p.facts[factKey{p.Analyzer.Name, obj}] = fact
}

// ObjectFact returns the fact this analyzer exported for obj, if any.
func (p *Pass) ObjectFact(obj types.Object) (any, bool) {
	f, ok := p.facts[factKey{p.Analyzer.Name, obj}]
	return f, ok
}

// ModulePass is the Finish-stage view: every package of the load plus the
// facts the per-package passes exported. All packages of one Run share a
// FileSet, so positions from any package resolve here.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	fset     *token.FileSet
	diags    *[]Diagnostic
	facts    factSet
}

// Reportf records a module-level finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Position resolves a token.Pos against the load's shared FileSet.
func (p *ModulePass) Position(pos token.Pos) token.Position {
	return p.fset.Position(pos)
}

// ObjectFact returns the fact this analyzer exported for obj, if any.
func (p *ModulePass) ObjectFact(obj types.Object) (any, bool) {
	f, ok := p.facts[factKey{p.Analyzer.Name, obj}]
	return f, ok
}

// AllObjectFacts returns every (object, fact) pair this analyzer
// exported, in unspecified order.
func (p *ModulePass) AllObjectFacts() map[types.Object]any {
	out := map[types.Object]any{}
	for k, v := range p.facts {
		if k.analyzer == p.Analyzer.Name {
			out[k.obj] = v
		}
	}
	return out
}

// nolintDirective is one parsed //advect:nolint comment.
type nolintDirective struct {
	pos      token.Pos
	line     int    // line the directive suppresses findings on (its own)
	analyzer string // "" when malformed
	reason   string
}

const (
	nolintMarker  = "advect:nolint"
	hotpathMarker = "//advect:hotpath"
)

// HasDirective reports whether the function declaration carries the given
// //advect:<name> marker in its doc comment.
func HasDirective(fd *ast.FuncDecl, name string) bool {
	if fd.Doc == nil {
		return false
	}
	want := "//advect:" + name
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// directiveBody extracts the "advect:nolint ..." payload of a comment, in
// either the line form "//advect:nolint ..." or the block form
// "/* advect:nolint ... */". Comments that merely mention the marker in
// prose (doc comments, want expectations) don't start with it after the
// comment opener and are ignored.
func directiveBody(text string) (string, bool) {
	if rest, ok := strings.CutPrefix(text, "//"); ok {
		rest = strings.TrimSpace(rest)
		if strings.HasPrefix(rest, nolintMarker) {
			return rest, true
		}
		return "", false
	}
	if inner, ok := strings.CutPrefix(text, "/*"); ok {
		inner = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(inner), "*/"))
		if strings.HasPrefix(inner, nolintMarker) {
			return inner, true
		}
	}
	return "", false
}

// parseNolints extracts every advect:nolint directive from the package.
// A directive suppresses findings on its own source line, so it can sit
// at the end of the flagged line (line or block comment form) or on a
// line of its own immediately above. One comment may chain several
// directives — "//advect:nolint a why advect:nolint b why" — when a line
// trips more than one analyzer.
func parseNolints(pkg *Package) []nolintDirective {
	var out []nolintDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body, ok := directiveBody(strings.TrimSpace(c.Text))
				if !ok {
					continue
				}
				// A reason never embeds "//": anything after one is a
				// trailing comment (the fixtures' "// want" markers).
				if i := strings.Index(body, "//"); i >= 0 {
					body = body[:i]
				}
				pos := c.Pos()
				line := pkg.Fset.Position(pos).Line
				// Each advect:nolint occurrence starts one directive; its
				// reason runs to the next occurrence or the comment's end.
				// body begins with the marker, so the first split element
				// is always empty and dropped.
				for _, chunk := range strings.Split(body, nolintMarker)[1:] {
					chunk = strings.TrimSpace(chunk)
					d := nolintDirective{pos: pos, line: line}
					fields := strings.Fields(chunk)
					if len(fields) > 0 {
						d.analyzer = fields[0]
						d.reason = strings.TrimSpace(strings.TrimPrefix(chunk, fields[0]))
					}
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// suppressKey identifies one (file, line, analyzer) suppression target.
type suppressKey struct {
	file     string
	line     int
	analyzer string
}

// Run executes every analyzer over every package (in the order given —
// the module loader's topological order, so fact exporters see callees
// first), then every Finish pass over the whole load, applies the nolint
// directives, validates the directives themselves, and returns the
// surviving diagnostics sorted by position. All packages must share one
// FileSet (LoadModule guarantees this; LoadDir loads are single-package).
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	facts := factSet{}
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &raw, facts: facts}
			a.Run(pass)
		}
	}
	if len(pkgs) > 0 {
		for _, a := range analyzers {
			if a.Finish == nil {
				continue
			}
			mp := &ModulePass{Analyzer: a, Pkgs: pkgs, fset: pkgs[0].Fset, diags: &raw, facts: facts}
			a.Finish(mp)
		}
	}

	// A directive covers its own line and the line below it, so both
	//   stmt // advect:nolint a r
	// and
	//   // advect:nolint a r
	//   stmt
	// work. Malformed or unknown directives become findings. Suppression
	// is keyed by file so module-level (Finish) diagnostics land on the
	// same audit trail as per-package ones.
	suppress := map[suppressKey]bool{}
	for _, pkg := range pkgs {
		for _, d := range parseNolints(pkg) {
			pos := pkg.Fset.Position(d.pos)
			switch {
			case d.analyzer == "":
				raw = append(raw, Diagnostic{
					Pos: pos, Analyzer: "nolint",
					Message: "malformed //advect:nolint: want \"//advect:nolint <analyzer> <reason>\"",
				})
			case !known[d.analyzer] && d.analyzer != "nolint":
				raw = append(raw, Diagnostic{
					Pos: pos, Analyzer: "nolint",
					Message: fmt.Sprintf("//advect:nolint names unknown analyzer %q", d.analyzer),
				})
			case d.reason == "":
				raw = append(raw, Diagnostic{
					Pos: pos, Analyzer: "nolint",
					Message: fmt.Sprintf("//advect:nolint %s is missing its reason: every suppression must say why", d.analyzer),
				})
			default:
				suppress[suppressKey{pos.Filename, d.line, d.analyzer}] = true
				suppress[suppressKey{pos.Filename, d.line + 1, d.analyzer}] = true
			}
		}
	}
	var diags []Diagnostic
	for _, d := range raw {
		if suppress[suppressKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		diags = append(diags, d)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
