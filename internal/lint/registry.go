package lint

// Default returns the project registry: every analyzer, configured with
// the repo's real invariants. cmd/advectlint runs exactly this set, and
// the ci.sh gate runs cmd/advectlint, so this list is the single place a
// new invariant gets wired in.
func Default() []*Analyzer {
	return []*Analyzer{
		Nilsafe(map[string][]string{
			"internal/obs":       {"Recorder"},
			"internal/telemetry": {"Window", "Hub"},
			"internal/flight":    {"Recorder", "Engine"},
			"internal/session":   {"Store", "Warmer"},
		}),
		ClockDiscipline(
			[]string{"internal/gpusim", "internal/vtime"},
			[]string{"internal/vtime.Time", "internal/gpusim.HostClock"},
		),
		Hotpath(),
		CtxFlow(),
		LockHeld(),
		LockOrder(),
		GoroutineLife(),
		SSEDisc(),
	}
}
