package lint

import (
	"go/ast"
	"go/types"
)

// ClockDiscipline builds the analyzer keeping the wall clock and the
// simulator's virtual clock apart, the separation the paper's overlap
// accounting depends on: reading time.Now inside simulated-device code
// would stamp virtual events with wall time and silently corrupt every
// overlap report.
//
// simPkgs lists package-path suffixes (e.g. "internal/gpusim") where wall
// clock reads are banned outright. clockTypes lists type suffixes (e.g.
// "internal/vtime.Time") whose appearance in a function's parameters or
// receiver marks the whole function as virtual-clocked, banning wall
// reads inside it wherever it lives.
func ClockDiscipline(simPkgs, clockTypes []string) *Analyzer {
	a := &Analyzer{
		Name: "clockdiscipline",
		Doc:  "no wall-clock reads (time.Now/Since/Until) in virtual-time code",
	}
	a.Run = func(pass *Pass) {
		simPkg := false
		for _, s := range simPkgs {
			if pathMatches(pass.Pkg.Path, s) {
				simPkg = true
				break
			}
		}
		flagCalls := func(body *ast.BlockStmt, where string) {
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := callee(pass, call)
				if isFuncNamed(fn, "time", "Now", "Since", "Until") {
					pass.Reportf(call.Pos(), "time.%s in %s: virtual-time code must be timed on the simulator clock, not the wall clock", fn.Name(), where)
				}
				return true
			})
		}
		for _, fd := range funcDecls(pass.Pkg) {
			if fd.Body == nil {
				continue
			}
			switch {
			case simPkg:
				flagCalls(fd.Body, "a simulated-time package")
			case funcTakesClock(pass, fd, clockTypes):
				flagCalls(fd.Body, "a function that takes the virtual clock")
			}
		}
	}
	return a
}

// funcTakesClock reports whether any parameter or the receiver of fd has
// one of the virtual-clock types.
func funcTakesClock(pass *Pass, fd *ast.FuncDecl, clockTypes []string) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			tv, ok := pass.Pkg.Info.Types[f.Type]
			if !ok {
				continue
			}
			t := tv.Type
			if sl, isSlice := t.(*types.Slice); isSlice {
				t = sl.Elem() // variadic or slice-of-clock params count too
			}
			if typeSuffixMatches(t, clockTypes) {
				return true
			}
		}
		return false
	}
	return check(fd.Type.Params) || check(fd.Recv)
}
