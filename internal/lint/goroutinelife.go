package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLife builds the analyzer enforcing goroutine lifecycles: every
// `go` statement outside package main (tests never reach the loader) must
// be visibly tied to a shutdown or completion path. A launch is tied when
// the goroutine's body — the `go` literal's own body, or the body of a
// same-package named callee — does any of:
//
//   - reference a context.Context (a parameter, capture, or field like
//     s.baseCtx: deriving from a context is observing cancellation)
//   - signal a sync.WaitGroup (Done, deferred or not)
//   - close a channel or send on one (completion signalling)
//   - receive from or range over a channel (a done/work channel is the
//     goroutine's own stop condition)
//
// or when the `go` call passes a context.Context argument to its callee.
// Anything else is a fire-and-forget leak candidate and must either gain
// one of the forms above or carry an audited
// //advect:nolint goroutinelife <reason>. The tie must be visible one
// level deep — indirection through another call is deliberately not
// credited, so a refactor cannot silently orphan a goroutine.
func GoroutineLife() *Analyzer {
	a := &Analyzer{
		Name: "goroutinelife",
		Doc:  "every go statement outside main is tied to a context, WaitGroup, or done channel",
	}
	a.Run = func(pass *Pass) {
		if pass.Pkg.Types.Name() == "main" {
			return
		}
		// Same-package function bodies, for `go f()` / `go s.loop()`.
		bodies := map[*types.Func]*ast.BlockStmt{}
		for _, fd := range funcDecls(pass.Pkg) {
			if fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok && fd.Body != nil {
				bodies[fn] = fd.Body
			}
		}
		for _, fd := range funcDecls(pass.Pkg) {
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if goStmtTied(pass, g, bodies) {
					return true
				}
				pass.Reportf(g.Pos(), "goroutine is not tied to a lifecycle: receive/derive a context.Context, signal a WaitGroup or done channel, or audit it with //advect:nolint goroutinelife <reason>")
				return true
			})
		}
	}
	return a
}

// goStmtTied reports whether the launch is tied to a lifecycle.
func goStmtTied(pass *Pass, g *ast.GoStmt, bodies map[*types.Func]*ast.BlockStmt) bool {
	// A context argument handed to the goroutine counts regardless of
	// what we can see of the callee.
	for _, arg := range g.Call.Args {
		if tv, ok := pass.Pkg.Info.Types[arg]; ok && isContextType(tv.Type) {
			return true
		}
	}
	var body *ast.BlockStmt
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if fn := callee(pass, g.Call); fn != nil {
			body = bodies[fn] // nil when cross-package or interface: not visible
		}
	}
	if body == nil {
		return false
	}
	return hasLifecycleSignal(pass, body)
}

// hasLifecycleSignal scans a function body for any of the accepted
// lifecycle forms.
func hasLifecycleSignal(pass *Pass, body *ast.BlockStmt) bool {
	info := pass.Pkg.Info
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case ast.Expr:
			if tv, ok := info.Types[n]; ok && isContextType(tv.Type) {
				found = true
				return false
			}
			if un, ok := n.(*ast.UnaryExpr); ok && un.Op == token.ARROW {
				found = true // channel receive: a stop/work channel
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID && id.Name == "close" {
					// Accept only the builtin close, not a user function
					// that happens to share its name.
					if _, isB := info.Uses[id].(*types.Builtin); isB || info.Uses[id] == nil {
						found = true
						return false
					}
				}
				if fn := callee(pass, call); fn != nil {
					if rpkg, rname, ok := recvTypeName(fn); ok && rpkg == "sync" && rname == "WaitGroup" && fn.Name() == "Done" {
						found = true
						return false
					}
				}
			}
		case *ast.SendStmt:
			found = true
			return false
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
