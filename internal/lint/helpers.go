package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// pathMatches reports whether an import path equals suffix or ends with
// "/"+suffix — so "internal/obs" matches "repro/internal/obs" without
// hard-coding the module path, and fixture packages can opt in by ending
// their declared path the same way.
func pathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// callee resolves a call expression to the *types.Func it invokes (method
// or function), or nil for builtins, conversions, and indirect calls
// through function values.
func callee(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Pkg.Info.Uses[id].(*types.Func)
	return fn
}

// isFuncNamed reports whether fn is package pkgPath's function with one of
// the given names (receiver-less functions only).
func isFuncNamed(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// recvTypeName unwraps a method's receiver to (package path, type name);
// ok is false for receiver-less functions and unnamed receivers.
func recvTypeName(fn *types.Func) (pkgPath, name string, ok bool) {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// signatureAcceptsContext reports whether any parameter of sig is a
// context.Context.
func signatureAcceptsContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// typeSuffixMatches reports whether the fully-qualified name of t (after
// stripping one pointer) ends in one of the suffixes, each of the form
// "pkg/path.Type" (suffix-matched on the package path part).
func typeSuffixMatches(t types.Type, suffixes []string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	for _, s := range suffixes {
		if full == s || strings.HasSuffix(full, "/"+s) {
			return true
		}
	}
	return false
}

// funcDecls yields every function declaration in the package.
func funcDecls(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				out = append(out, fd)
			}
		}
	}
	return out
}
