package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow builds the analyzer enforcing context threading: cancellation
// reaches a running simulation only if every layer hands its
// context.Context down, so a context parameter must actually flow to the
// callees that accept one, and fresh root contexts
// (context.Background/TODO) may be minted only at the program edge —
// package main, cmd/ trees, and tests — never in library code, where a
// root context severs the caller's cancellation signal.
func CtxFlow() *Analyzer {
	a := &Analyzer{
		Name: "ctxflow",
		Doc:  "thread context.Context through; no context.Background/TODO outside cmd/, tests, and main",
	}
	a.Run = func(pass *Pass) {
		atEdge := pass.Pkg.Types.Name() == "main" || hasPathSegment(pass.Pkg.Path, "cmd")
		for _, fd := range funcDecls(pass.Pkg) {
			if fd.Body == nil {
				continue
			}
			ctxParams := contextParams(pass, fd)
			hasCtx := len(ctxParams) > 0

			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := callee(pass, call)
				if !isFuncNamed(fn, "context", "Background", "TODO") {
					return true
				}
				switch {
				case hasCtx:
					pass.Reportf(call.Pos(), "%s receives a context but mints context.%s: pass the parameter down instead of severing cancellation", fd.Name.Name, fn.Name())
				case !atEdge:
					pass.Reportf(call.Pos(), "context.%s outside cmd/, tests, and main: accept a context.Context and thread it through", fn.Name())
				}
				return true
			})

			// A named context parameter that is never used, in a body
			// that calls at least one context-accepting callee, is a
			// broken link in the cancellation chain.
			for _, obj := range ctxParams {
				if obj.Name() == "" || obj.Name() == "_" {
					continue
				}
				if usesObject(pass, fd.Body, obj) {
					continue
				}
				if calleeAcceptingContext(pass, fd.Body) {
					pass.Reportf(fd.Pos(), "%s ignores its context parameter %s but calls functions that accept one: thread it through", fd.Name.Name, obj.Name())
				}
			}
		}
	}
	return a
}

// hasPathSegment reports whether path contains seg as a whole "/" segment.
func hasPathSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// contextParams returns the type objects of fd's context.Context params.
func contextParams(pass *Pass, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return nil
	}
	for _, f := range fd.Type.Params.List {
		for _, name := range f.Names {
			obj := pass.Pkg.Info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

// usesObject reports whether body mentions obj.
func usesObject(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// calleeAcceptingContext reports whether body calls anything whose
// signature has a context.Context parameter.
func calleeAcceptingContext(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := callee(pass, call); fn != nil {
			if sig, ok := fn.Type().(*types.Signature); ok && signatureAcceptsContext(sig) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
