package advect

// One benchmark per table and figure of the paper (regenerating the data
// behind it and reporting the headline number as a custom metric), plus
// functional benchmarks of the kernels and implementations themselves.
//
// The figure benchmarks exercise the calibrated performance models, so
// their wall time is the cost of the model sweep; the headline GF metrics
// they report are the reproduced results. The functional benchmarks run
// real computation on real goroutines.

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/grid"
	"repro/internal/harness"
	"repro/internal/loc"
	"repro/internal/machine"
	"repro/internal/perf"
	"repro/internal/stencil"
)

// --- Table I ---------------------------------------------------------------

func BenchmarkTableI(b *testing.B) {
	c := grid.Velocity{X: 1, Y: 0.5, Z: 0.25}
	nu := stencil.MaxStableNu(c)
	for i := 0; i < b.N; i++ {
		if stencil.TableI(c, nu).Sum() == 0 {
			b.Fatal("bad coefficients")
		}
	}
}

// --- Table II ---------------------------------------------------------------

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(machine.All()) != 4 {
			b.Fatal("wrong machine count")
		}
	}
}

// --- Figure 2 ----------------------------------------------------------------

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := loc.Figure2()
		if err != nil || len(rows) != 9 {
			b.Fatalf("fig2: %v", err)
		}
	}
}

// --- Figures 3-6: CPU scaling -------------------------------------------------

func benchFigure(b *testing.B, run func() []series) {
	b.Helper()
	var last []series
	for i := 0; i < b.N; i++ {
		last = run()
	}
	peak := 0.0
	for _, s := range last {
		for _, y := range s.y() {
			if y > peak {
				peak = y
			}
		}
	}
	b.ReportMetric(peak, "peak-GF")
}

// series adapts stats.Series without importing it here.
type series interface{ y() []float64 }

type wrapped struct{ ys []float64 }

func (w wrapped) y() []float64 { return w.ys }

func wrapSeries(run func() [][]float64) func() []series {
	return func() []series {
		var out []series
		for _, ys := range run() {
			out = append(out, wrapped{ys})
		}
		return out
	}
}

func BenchmarkFig3(b *testing.B) {
	benchFigure(b, wrapSeries(func() [][]float64 {
		var out [][]float64
		for _, s := range harness.BestPerImpl(machine.JaguarPF(), harness.CPUKinds()) {
			out = append(out, s.Y)
		}
		return out
	}))
}

func BenchmarkFig4(b *testing.B) {
	benchFigure(b, wrapSeries(func() [][]float64 {
		var out [][]float64
		for _, s := range harness.BestPerImpl(machine.HopperII(), harness.CPUKinds()) {
			out = append(out, s.Y)
		}
		return out
	}))
}

func BenchmarkFig5(b *testing.B) {
	benchFigure(b, wrapSeries(func() [][]float64 {
		var out [][]float64
		for _, s := range harness.ThreadSweep(machine.JaguarPF()) {
			out = append(out, s.Y)
		}
		return out
	}))
}

func BenchmarkFig6(b *testing.B) {
	benchFigure(b, wrapSeries(func() [][]float64 {
		var out [][]float64
		for _, s := range harness.ThreadSweep(machine.HopperII()) {
			out = append(out, s.Y)
		}
		return out
	}))
}

// --- Figures 7-8: GPU block sizes ---------------------------------------------

func BenchmarkFig7(b *testing.B) {
	benchFigure(b, wrapSeries(func() [][]float64 {
		var out [][]float64
		for _, s := range harness.BlockSweep(gpusim.TeslaC1060()) {
			out = append(out, s.Y)
		}
		return out
	}))
}

func BenchmarkFig8(b *testing.B) {
	benchFigure(b, wrapSeries(func() [][]float64 {
		var out [][]float64
		for _, s := range harness.BlockSweep(gpusim.TeslaC2050()) {
			out = append(out, s.Y)
		}
		return out
	}))
}

// --- Figures 9-12: GPU clusters -------------------------------------------------

func BenchmarkFig9(b *testing.B) {
	benchFigure(b, wrapSeries(func() [][]float64 {
		var out [][]float64
		for _, s := range harness.BestPerImpl(machine.Lens(), harness.ClusterKinds()) {
			out = append(out, s.Y)
		}
		return out
	}))
}

func BenchmarkFig10(b *testing.B) {
	benchFigure(b, wrapSeries(func() [][]float64 {
		var out [][]float64
		for _, s := range harness.BestPerImpl(machine.Yona(), harness.ClusterKinds()) {
			out = append(out, s.Y)
		}
		return out
	}))
}

func BenchmarkFig11(b *testing.B) {
	benchFigure(b, wrapSeries(func() [][]float64 {
		var out [][]float64
		for _, s := range harness.HybridCombos(machine.Lens()) {
			out = append(out, s.Y)
		}
		return out
	}))
}

func BenchmarkFig12(b *testing.B) {
	benchFigure(b, wrapSeries(func() [][]float64 {
		var out [][]float64
		for _, s := range harness.HybridCombos(machine.Yona()) {
			out = append(out, s.Y)
		}
		return out
	}))
}

// --- Section V-E ------------------------------------------------------------

func BenchmarkSectionVE(b *testing.B) {
	yona := machine.Yona()
	var i3 perf.Estimate
	for i := 0; i < b.N; i++ {
		var err error
		i3, err = perf.Evaluate(perf.Config{
			M: yona, Kind: core.HybridOverlap, Cores: 12, Threads: 12,
			BoxThickness: 1, BlockX: 32, BlockY: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(i3.GF, "hybrid-overlap-GF")
}

// --- functional benchmarks ---------------------------------------------------

func BenchmarkStencilApply(b *testing.B) {
	n := grid.Uniform(64)
	c := grid.Velocity{X: 1, Y: 0.5, Z: 0.25}
	src := grid.NewField(n, 1)
	grid.FillGaussian(src, grid.DefaultGaussian(n))
	src.CopyPeriodicHalos()
	dst := grid.NewField(n, 1)
	op := stencil.NewOp(stencil.TableI(c, stencil.MaxStableNu(c)), src)
	whole := stencil.Whole(n)
	b.SetBytes(int64(n.Volume()) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Apply(src, dst, whole)
	}
	gf := float64(n.Volume()) * stencil.FlopsPerPoint * float64(b.N) / b.Elapsed().Seconds() / 1e9
	b.ReportMetric(gf, "GF")
}

func BenchmarkHaloExchangeSelf(b *testing.B) {
	n := grid.Uniform(64)
	f := grid.NewField(n, 1)
	grid.FillGaussian(f, grid.DefaultGaussian(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.CopyPeriodicHalos()
	}
}

func benchFunctional(b *testing.B, k core.Kind, o core.Options) {
	b.Helper()
	p := core.DefaultProblem(48, 1)
	r, err := core.New(k)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(p, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFunctionalSingle(b *testing.B) {
	benchFunctional(b, core.SingleTask, core.Options{Threads: 4})
}

func BenchmarkFunctionalBulk(b *testing.B) {
	benchFunctional(b, core.BulkSync, core.Options{Tasks: 8, Threads: 1})
}

func BenchmarkFunctionalNonblocking(b *testing.B) {
	benchFunctional(b, core.NonblockingOverlap, core.Options{Tasks: 8, Threads: 1})
}

func BenchmarkFunctionalThreaded(b *testing.B) {
	benchFunctional(b, core.ThreadedOverlap, core.Options{Tasks: 4, Threads: 2})
}

func BenchmarkFunctionalGPUResident(b *testing.B) {
	benchFunctional(b, core.GPUResident, core.Options{BlockX: 16, BlockY: 8})
}

func BenchmarkFunctionalGPUBulk(b *testing.B) {
	benchFunctional(b, core.GPUBulkSync, core.Options{Tasks: 2, BlockX: 16, BlockY: 8})
}

func BenchmarkFunctionalGPUStreams(b *testing.B) {
	benchFunctional(b, core.GPUStreams, core.Options{Tasks: 2, BlockX: 16, BlockY: 8})
}

func BenchmarkFunctionalHybridBulk(b *testing.B) {
	benchFunctional(b, core.HybridBulkSync, core.Options{Tasks: 2, Threads: 2, BlockX: 16, BlockY: 8})
}

func BenchmarkFunctionalHybridOverlap(b *testing.B) {
	benchFunctional(b, core.HybridOverlap, core.Options{Tasks: 2, Threads: 2, BlockX: 16, BlockY: 8})
}

// --- ablation benchmarks -------------------------------------------------------
// One bench per load-bearing design choice (DESIGN.md §7): each reports the
// with/without values of the mechanism as custom metrics.

func BenchmarkAblationCamping(b *testing.B) {
	var withX, withoutX int
	for i := 0; i < b.N; i++ {
		withX, withoutX, _ = perf.AblateCamping()
	}
	b.ReportMetric(float64(withX), "bestX-with")
	b.ReportMetric(float64(withoutX), "bestX-without")
}

func BenchmarkAblationOffload(b *testing.B) {
	var withR, withoutR float64
	for i := 0; i < b.N; i++ {
		withR, withoutR = perf.AblateOffload(1536)
	}
	b.ReportMetric(withR, "C/B-with")
	b.ReportMetric(withoutR, "C/B-without")
}

func BenchmarkAblationSlowPipe(b *testing.B) {
	var cal, ideal perf.AblationResult
	for i := 0; i < b.N; i++ {
		cal, ideal = perf.AblateSlowPipe()
	}
	b.ReportMetric(cal.Ablated/cal.Baseline, "I/G-calibrated")
	b.ReportMetric(ideal.Ablated/ideal.Baseline, "I/G-idealized")
}

func BenchmarkAblationThreadSlope(b *testing.B) {
	var withT, withoutT int
	for i := 0; i < b.N; i++ {
		withT, withoutT = perf.AblateThreadSlope(48)
	}
	b.ReportMetric(float64(withT), "bestT-with")
	b.ReportMetric(float64(withoutT), "bestT-without")
}

func BenchmarkAblationConcurrentKernels(b *testing.B) {
	var r perf.AblationResult
	for i := 0; i < b.N; i++ {
		r = perf.AblateConcurrentKernels()
	}
	b.ReportMetric(r.Baseline, "GF-concurrent")
	b.ReportMetric(r.Ablated, "GF-serialized")
}

// --- experiment rendering -----------------------------------------------------

func BenchmarkRenderAllExperiments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, e := range harness.All() {
			if e.ID == "verify" {
				continue // functional; benchmarked separately above
			}
			if err := e.Run(io.Discard); err != nil {
				b.Fatalf("%s: %v", e.ID, err)
			}
		}
	}
}

// --- extension experiments -------------------------------------------------

func BenchmarkExtPCIe(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		series := harness.ExtPCIe()
		var g, h float64
		for _, s := range series {
			switch s.Label {
			case "gpu-streams":
				g = s.Y[len(s.Y)-1]
			case "hybrid-overlap":
				h = s.Y[len(s.Y)-1]
			}
		}
		ratio = h / g
	}
	b.ReportMetric(ratio, "I/G-at-8x-link")
}

func BenchmarkExtGPUs(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		for _, s := range harness.ExtGPUs() {
			if v, idx := s.Max(); idx >= 0 && v > peak {
				peak = v
			}
		}
	}
	b.ReportMetric(peak, "peak-GF")
}

func BenchmarkExtWeak(b *testing.B) {
	var eff float64
	for i := 0; i < b.N; i++ {
		s := harness.ExtWeak()[0]
		eff = s.Y[len(s.Y)-1] / s.Y[0]
	}
	b.ReportMetric(eff, "weak-efficiency")
}

func BenchmarkExtWideHalo(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		series := harness.ExtWideHalo()
		var bulk, w2 float64
		for _, s := range series {
			switch s.Label {
			case "bulk (W=1)":
				bulk = s.Y[len(s.Y)-1]
			case "wide halo W=2":
				w2 = s.Y[len(s.Y)-1]
			}
		}
		gain = w2 / bulk
	}
	b.ReportMetric(gain, "W2/bulk-at-153k")
}

func BenchmarkFunctionalWideHalo(b *testing.B) {
	benchFunctional(b, core.WideHaloExt, core.Options{Tasks: 4, HaloWidth: 2})
}
