// Autotune: the paper's conclusion calls out the need to tune the number
// of OpenMP threads per MPI task and the CPU box thickness, noting that
// the best settings shift with scale (§VI). This example implements the
// simple exhaustive tuner the paper stops short of: for each machine and
// core count it searches the tuning space of the full-overlap hybrid
// implementation with the performance model and reports how the optimum
// moves — threads per task up with scale, box thickness down.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/harness"
	"repro/internal/tune"
)

func main() {
	for _, name := range []string{"Lens", "Yona"} {
		m, err := advect.MachineByName(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s (1 GPU per %d cores): coordinate-descent tuner\n", m.Name, m.CoresPerGPU())
		sched, err := tune.BuildSchedule(m, advect.HybridOverlap, harness.CoreCounts(m))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8s  %8s  %10s  %9s  %9s  %8s\n", "cores", "threads", "tasks/node", "thickness", "block", "GF")
		for _, e := range sched.Entries {
			fmt.Printf("%8d  %8d  %10d  %9d  %6dx%-2d  %8.1f\n",
				e.Cores, e.Point.Threads, m.Node.Cores()/e.Point.Threads,
				e.Point.Thickness, e.Point.BlockX, e.Point.BlockY, e.GF)
		}
		fmt.Println()
	}

	// The same search for the CPU machines: the paper's other tuning
	// axis, threads per task for the bulk-synchronous implementation.
	for _, name := range []string{"JaguarPF", "Hopper II"} {
		m, err := advect.MachineByName(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: best threads/task for bulk-synchronous MPI\n", m.Name)
		for _, cores := range harness.CoreCounts(m) {
			bestGF, bestT := 0.0, 0
			for _, t := range m.ThreadChoices {
				if cores%t != 0 {
					continue
				}
				e, err := advect.Predict(advect.PredictConfig{
					M: m, Kind: advect.BulkSync, Cores: cores, Threads: t,
				})
				if err == nil && e.GF > bestGF {
					bestGF, bestT = e.GF, t
				}
			}
			fmt.Printf("  %6d cores -> %2d threads/task (%.0f GF)\n", cores, bestT, bestGF)
		}
		fmt.Println()
	}
}
