// Service: a client walkthrough of the advectd serving layer. It boots the
// service in-process on a loopback port, then drives it the way an HTTP
// client would: health check, a predict job submitted twice (the second is
// answered from the content-addressed result cache), a small functional
// simulation polled to its verified result, a metrics read showing the
// cache and queue counters, and a graceful drain.
//
// The architecture mirrors the paper's overlap lesson at the serving
// level: admission, execution, and result delivery are decoupled stages
// that run concurrently, and backpressure is explicit (a full queue is a
// 429, not an unbounded buffer).
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/service"
)

func main() {
	srv := service.New(service.Config{Workers: 2, QueueCap: 8, CacheEntries: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("== advectd serving on %s (2 workers, queue 8)\n\n", ts.URL)

	var health struct {
		Status string `json:"status"`
	}
	getJSON(ts.URL+"/healthz", &health)
	fmt.Printf("healthz: %s\n\n", health.Status)

	// A predict job: query the calibrated performance model for the full
	// overlap implementation at machine scale. Submitting the identical
	// request again is answered from the result cache without touching the
	// queue or the workers.
	predict := `{"type":"predict","predict":{"machine":"Yona","kind":"hybrid-overlap","cores":96,"threads":6}}`
	fmt.Println("== predict: Yona, hybrid-overlap, 96 cores")
	v1 := post(ts.URL, predict)
	waitDone(ts.URL, v1.ID)
	var pres struct {
		GF      float64 `json:"gf"`
		StepSec float64 `json:"step_sec"`
	}
	getJSON(fmt.Sprintf("%s/v1/jobs/%s/result", ts.URL, v1.ID), &pres)
	fmt.Printf("  %s: model predicts %.1f GF (%.4f s/step)\n", v1.ID, pres.GF, pres.StepSec)
	v2 := post(ts.URL, predict)
	fmt.Printf("  %s: resubmitted -> state %s, cache_hit=%v (no worker involved)\n\n",
		v2.ID, v2.State, v2.CacheHit)

	// A functional simulation: run the bulk-synchronous implementation on
	// 2 in-process MPI tasks and poll for the verified result.
	simulate := `{"type":"simulate","simulate":{"kind":"bulk","n":24,"steps":10,"tasks":2,"threads":2,"verify":true}}`
	fmt.Println("== simulate: bulk, 24^3, 10 steps, 2 tasks x 2 threads")
	v3 := post(ts.URL, simulate)
	fmt.Printf("  %s: accepted, polling...\n", v3.ID)
	waitDone(ts.URL, v3.ID)
	var sres struct {
		GF   float64 `json:"gf"`
		L2   float64 `json:"l2"`
		LInf float64 `json:"linf"`
	}
	getJSON(fmt.Sprintf("%s/v1/jobs/%s/result", ts.URL, v3.ID), &sres)
	fmt.Printf("  %s: done, %.2f GF, error norms L2=%.3e Linf=%.3e\n\n", v3.ID, sres.GF, sres.L2, sres.LInf)

	// The metrics document carries the queue, worker, cache, and per-type
	// outcome counters, in Prometheus text or JSON.
	var snap service.Snapshot
	getJSON(ts.URL+"/metrics?format=json", &snap)
	fmt.Println("== metrics (JSON form)")
	fmt.Printf("  cache: %d hit, %d miss (the repeated predict hit)\n", snap.Cache.Hits, snap.Cache.Misses)
	fmt.Printf("  jobs:  predict %v, simulate %v\n\n", snap.Jobs["predict"], snap.Jobs["simulate"])

	// Graceful drain: admission stops, in-flight jobs finish.
	if err := srv.Shutdown(); err != nil {
		log.Fatalf("drain: %v", err)
	}
	fmt.Println("== drained cleanly")
}

func post(base, body string) service.View {
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		log.Fatalf("submit: %s", resp.Status)
	}
	var v service.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		log.Fatal(err)
	}
	return v
}

func getJSON(url string, doc any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(doc); err != nil {
		log.Fatal(err)
	}
}

func waitDone(base, id string) {
	deadline := time.Now().Add(60 * time.Second)
	for {
		var v service.View
		getJSON(base+"/v1/jobs/"+id, &v)
		if v.State == service.StateDone {
			return
		}
		if v.State.Terminal() {
			log.Fatalf("job %s landed in %s: %s", id, v.State, v.Error)
		}
		if time.Now().After(deadline) {
			log.Fatalf("job %s stuck in %s", id, v.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
