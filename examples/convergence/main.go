// Convergence: validate the numerics behind the whole study. The paper's
// method is O(Δ²) for a fixed simulated time (§II); this example advects a
// Gaussian over the same physical distance on a ladder of resolutions and
// prints the observed convergence order between consecutive rungs — it
// should approach 2. It also demonstrates the exact-shift property at
// Courant number 1, where Lax-Wendroff is error-free.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
	"repro/internal/grid"
)

func main() {
	c := advect.Velocity{X: 0.8, Y: 0.4, Z: 0.2}

	fmt.Println("grid      steps   L2 error      LInf error    observed order")
	type row struct {
		n   int
		l2  float64
		inf float64
	}
	var rows []row
	for _, n := range []int{16, 32, 64} {
		// Fixed fraction of a domain crossing: steps scale with n so the
		// simulated time (in domain units) is constant.
		steps := n / 2
		p := advect.Problem{
			N: advect.Dims{X: n, Y: n, Z: n}, C: c, Steps: steps,
			Wave: grid.Gaussian{
				Center: [3]float64{float64(n) / 2, float64(n) / 2, float64(n) / 2},
				Sigma:  float64(n) / 8,
			},
		}
		res, err := advect.Run(advect.SingleTask, p, advect.Options{Threads: 4, Verify: true})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{n, res.Norms.L2, res.Norms.LInf})
		order := ""
		if len(rows) > 1 {
			prev := rows[len(rows)-2]
			// Error ∝ h^p with h ∝ 1/n: p = log(e1/e2)/log(n2/n1).
			p := math.Log(prev.l2/res.Norms.L2) / math.Log(float64(n)/float64(prev.n))
			order = fmt.Sprintf("%.2f", p)
		}
		fmt.Printf("%4d^3  %6d   %.4e    %.4e    %s\n", n, steps, res.Norms.L2, res.Norms.LInf, order)
	}

	// Courant number exactly 1 in every dimension: the stencil degenerates
	// to a pure shift and the numerical solution is exact.
	p := advect.Problem{N: advect.Dims{X: 24, Y: 24, Z: 24}, C: advect.Velocity{X: 1, Y: 1, Z: 1}, Steps: 24}
	res, err := advect.Run(advect.SingleTask, p, advect.Options{Verify: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCourant number 1 (pure shift): LInf error after a full domain crossing = %.2e\n",
		res.Norms.LInf)
	fmt.Println("second-order convergence and the exact-shift limit validate the Table I")
	fmt.Println("coefficients end to end.")
}
