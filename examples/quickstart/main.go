// Quickstart: integrate the paper's test case — a Gaussian wave advected
// through a periodic cube — with the baseline single-task implementation,
// and verify the result against the analytic solution.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 48³ periodic cube, 60 time steps at the maximum stable ν.
	p := advect.NewProblem(48, 60)

	res, err := advect.Run(advect.SingleTask, p, advect.Options{
		Threads: 4,
		Verify:  true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("integrated %d steps of %v advection in %v (%.2f GF)\n",
		p.Steps, p.N, res.Elapsed, res.GF)
	fmt.Printf("error vs analytic solution: L2 %.3e, LInf %.3e\n",
		res.Norms.L2, res.Norms.LInf)
	fmt.Printf("mass drift over the run: %.3e (Lax-Wendroff conserves mass)\n",
		res.MassDrift)

	// The same problem on the simulated GPU, the paper's best-case §IV-E
	// configuration: the state never leaves device memory.
	gres, err := advect.Run(advect.GPUResident, p, advect.Options{
		BlockX: 32, BlockY: 8,
		Verify: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGPU-resident run matches to LInf %.1e of the CPU error (sim %.1f GF on a Tesla C2050)\n",
		gres.Norms.LInf, gres.Stats["sim.gf"])
}
