// Tracing: drive the simulated CUDA device directly through the gpusim
// API — two streams, asynchronous copies, events — and draw the resulting
// timeline as a Gantt chart, the picture behind the paper's Figure-9/10
// gaps. The bulk schedule serializes PCIe traffic against the interior
// kernel; the stream schedule hides it, exactly like implementations
// §IV-F vs §IV-G.
package main

import (
	"fmt"
	"os"

	"repro/internal/gpusim"
	"repro/internal/stats"
	"repro/internal/vtime"
)

func main() {
	interior := gpusim.StencilLaunch(416, 416, 418, 32, 8)
	facePts := 420*420*420 - 418*418*418
	halo := make([]float64, facePts)

	run := func(overlap bool) *vtime.Trace {
		dev := gpusim.NewDevice(gpusim.TeslaC2050(), gpusim.PCIeGen2())
		tr := vtime.NewTrace()
		dev.SetTrace(tr)
		s1 := dev.NewStream("interior")
		s2 := s1
		if overlap {
			s2 = dev.NewStream("boundary")
		}
		haloBuf := dev.Alloc(facePts)
		outBuf := dev.Alloc(facePts)

		var host vtime.Time
		for step := 0; step < 2; step++ {
			if overlap {
				// Stream schedule (§IV-G): interior first, boundary chain
				// behind it on the second stream.
				host = dev.Launch(host, s1, "interior", interior, func() {})
				host = dev.MemcpyAsync(host, s2, gpusim.HostToDevice, haloBuf, halo)
				host = dev.Launch(host, s2, "faces", gpusim.StencilLaunch(420, 420, 2, 32, 8), func() {})
				host = dev.MemcpyAsync(host, s2, gpusim.DeviceToHost, outBuf, halo)
			} else {
				// Bulk schedule (§IV-F): everything serialized.
				host = dev.Memcpy(host, gpusim.HostToDevice, haloBuf, halo)
				host = dev.Launch(host, s1, "faces", gpusim.StencilLaunch(420, 420, 2, 32, 8), func() {})
				host = dev.Launch(host, s1, "interior", interior, func() {})
				host = s1.Synchronize(host)
				host = dev.Memcpy(host, gpusim.DeviceToHost, outBuf, halo)
			}
			host = dev.Synchronize(host, s1, s2)
		}
		return tr
	}

	for _, mode := range []struct {
		name    string
		overlap bool
	}{
		{"bulk schedule (everything serialized, like IV-F)", false},
		{"stream schedule (PCIe + faces hidden behind interior, like IV-G)", true},
	} {
		tr := run(mode.overlap)
		var spans []stats.GanttSpan
		for _, s := range tr.Spans() {
			spans = append(spans, stats.GanttSpan{
				Lane: s.Lane, Label: s.Label,
				Start: s.Start.Seconds(), End: s.End.Seconds(),
			})
		}
		stats.Gantt(os.Stdout, mode.name, spans, 72)
		_, end := tr.MakeSpan()
		ov := tr.Overlap("gpu.interior", "pcie.h2d") +
			tr.Overlap("gpu.interior", "pcie.d2h") +
			tr.Overlap("gpu.interior", "gpu.boundary")
		fmt.Printf("  makespan %.2f ms, time overlapped with the interior kernel: %.2f ms\n\n",
			end.Seconds()*1e3, ov.Seconds()*1e3)
	}
	fmt.Println("the stream schedule's makespan is shorter by almost exactly the")
	fmt.Println("overlapped time — hiding communication is free throughput, which is")
	fmt.Println("the paper's thesis in one picture.")
}
