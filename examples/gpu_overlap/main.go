// GPU overlap: walk through the paper's five GPU implementations
// (§IV-E … §IV-I) on one simulated node and show where the time goes —
// the story of Section V-E. The bulk-synchronous GPU+MPI implementation
// drowns in CPU-GPU communication; streams hide some of it; the hybrid
// box decomposition with full overlap recovers nearly all of the
// GPU-resident throughput because a thin CPU shell decouples MPI traffic
// from PCIe traffic.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
)

func main() {
	p := advect.NewProblem(48, 10)

	fmt.Println("functional runs on the simulated Tesla C2050 (48^3 problem):")
	kinds := []advect.Kind{
		advect.GPUResident, advect.GPUBulkSync, advect.GPUStreams,
		advect.HybridBulkSync, advect.HybridOverlap,
	}
	for _, k := range kinds {
		o := advect.Options{
			Tasks: 1, Threads: 2,
			BlockX: 16, BlockY: 8,
			BoxThickness: 1,
			GPU:          core.GPUC2050,
			Verify:       true,
		}
		res, err := advect.Run(k, p, o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15s (%s)  sim step %7.3f ms  sim %6.1f GF  LInf err %.1e\n",
			k, k.Section(),
			res.Stats["sim.seconds"]/float64(p.Steps)*1e3,
			res.Stats["sim.gf"], res.Norms.LInf)
	}

	fmt.Println("\nmodelled at full 420^3 scale on one Yona node (paper §V-E):")
	yona, err := advect.MachineByName("Yona")
	if err != nil {
		log.Fatal(err)
	}
	paper := map[advect.Kind]string{
		advect.GPUResident:   "86",
		advect.GPUBulkSync:   "24",
		advect.GPUStreams:    "35",
		advect.HybridOverlap: "82",
	}
	for _, k := range kinds {
		bestGF := 0.0
		var bestCfg advect.PredictConfig
		for _, t := range yona.ThreadChoices {
			for _, w := range []int{1, 2, 3, 5} {
				cfg := advect.PredictConfig{
					M: yona, Kind: k, Cores: 12, Threads: t,
					BoxThickness: w, BlockX: 32, BlockY: 8,
				}
				e, err := advect.Predict(cfg)
				if err == nil && e.GF > bestGF {
					bestGF, bestCfg = e.GF, cfg
				}
			}
		}
		ref := paper[k]
		if ref == "" {
			ref = "-"
		}
		fmt.Printf("  %-15s best %6.1f GF (threads %2d, width %d)   paper: %s\n",
			k, bestGF, bestCfg.Threads, bestCfg.BoxThickness, ref)
	}
	fmt.Println("\nthe hybrid full-overlap implementation nearly matches GPU-resident:")
	fmt.Println("the CPUs' thin shell is not about load balance — it decouples MPI")
	fmt.Println("communication from CPU-GPU communication (paper §V-E, §VI).")
}
