// Plume: the paper's motivating scenario in miniature. Atmospheric
// dynamics advects tracers — here a pollutant plume released off-center in
// a periodic domain is transported by a constant wind, distributed over
// several MPI tasks with the bulk-synchronous implementation (§IV-B), and
// the run reports how the numerical plume tracks the true one over a full
// domain crossing.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/grid"
	"repro/internal/stats"
)

func main() {
	const n = 40
	// A north-easterly "wind": distinct components so all 27 stencil
	// coefficients are exercised.
	wind := advect.Velocity{X: 1.0, Y: 0.5, Z: 0.25}

	// Release the plume at a quarter of the domain, 2.5 points wide.
	p := advect.Problem{
		N:     advect.Dims{X: n, Y: n, Z: n},
		C:     wind,
		Steps: n, // at ν = 1/|c|max the plume crosses the domain once in x
		Wave: grid.Gaussian{
			Center: [3]float64{n / 4, n / 4, n / 2},
			Sigma:  2.5,
		},
	}

	fmt.Printf("advecting a plume through a %d^3 periodic domain with wind %+v\n", n, wind)
	for _, tasks := range []int{1, 4, 8} {
		res, err := advect.Run(advect.BulkSync, p, advect.Options{
			Tasks: tasks, Threads: 2, Verify: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d tasks: %8v  L2 %.3e  LInf %.3e  mass drift %.1e  (%.0f MPI msgs)\n",
			tasks, res.Elapsed, res.Norms.L2, res.Norms.LInf, res.MassDrift,
			res.Stats["mpi.messages"])
	}

	// The same run with the nonblocking-overlap implementation must land
	// on the same answer bit for bit up to roundoff: overlap changes the
	// schedule, never the mathematics.
	a, err := advect.Run(advect.BulkSync, p, advect.Options{Tasks: 8, Threads: 2})
	if err != nil {
		log.Fatal(err)
	}
	b, err := advect.Run(advect.NonblockingOverlap, p, advect.Options{Tasks: 8, Threads: 2})
	if err != nil {
		log.Fatal(err)
	}
	diff := grid.DiffNorms(a.Final, b.Final)
	fmt.Printf("\nbulk vs nonblocking-overlap final states differ by LInf %.1e\n", diff.LInf)

	// Watch the plume: the z = n/2 slice before and after a half crossing.
	initial := grid.NewField(p.N, 1)
	grid.FillGaussian(initial, p.Wave)
	fmt.Println()
	stats.Heatmap(os.Stdout, "plume at t=0 (z = n/2 slice)", n, n, func(i, j int) float64 {
		return initial.At(i, j, n/2)
	})
	fmt.Println()
	stats.Heatmap(os.Stdout, fmt.Sprintf("plume after %d steps", p.Steps), n, n, func(i, j int) float64 {
		return a.Final.At(i, j, (n/2+p.Steps/4)%n) // follow the wave in z
	})
	fmt.Println("\nthe wave has crossed the periodic domain diagonally, shape intact.")
}
