#!/bin/sh
# CI gate: formatting, vet, build, the full test suite with the race
# detector, and the disabled-tracing overhead guard.
# Stdlib-only repo; requires only a Go >= 1.22 toolchain.
set -eux

# Formatting gate: gofmt must have nothing to rewrite.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on: $unformatted" >&2
    exit 1
fi

go vet ./...

# advectlint gate: the project-invariant static analyzer suite
# (internal/lint + cmd/advectlint) must report nothing. The run emits the
# machine-readable report and archives it at ${TMPDIR}/advectlint.json
# (count 0 on a clean tree) so CI artifacts carry the analyzer set and
# findings; on failure the report is printed before the gate trips.
# Audited exceptions need an "//advect:nolint <analyzer> <reason>"
# directive.
go build -o "${TMPDIR:-/tmp}/advectlint" ./cmd/advectlint
if ! "${TMPDIR:-/tmp}/advectlint" -json ./... > "${TMPDIR:-/tmp}/advectlint.json"; then
    cat "${TMPDIR:-/tmp}/advectlint.json" >&2
    exit 1
fi

# Self-check: the analyzer test fixtures live under internal/lint/testdata
# and must stay invisible to the module build (the go tool skips testdata
# by convention; renaming the directory would silently compile them in).
if go list ./... | grep -q testdata; then
    echo "lint fixtures leaked into the module build" >&2
    exit 1
fi

go build ./...
go test -race ./...

# Disabled-tracing overhead guard: a nil *obs.Recorder must stay
# allocation-free (test-asserted) and under the ns/op bound recorded in
# BENCH_obs.json, so instrumented code paths stay free when untraced.
go test -run TestDisabledRecorderAllocatesNothing -count=1 ./internal/obs
max_ns=$(sed -n 's/.*"disabled_max_ns_per_op": *\([0-9.]*\).*/\1/p' BENCH_obs.json)
bench_out=$(go test -run '^$' -bench BenchmarkRecorderDisabled -benchtime 1000000x ./internal/obs)
echo "$bench_out"
ns=$(echo "$bench_out" | awk '/^BenchmarkRecorderDisabled/ {print $3}')
awk -v ns="$ns" -v max="$max_ns" 'BEGIN {
    if (ns == "" || max == "") { print "could not read benchmark or baseline"; exit 1 }
    if (ns + 0 > max + 0) { printf "disabled-tracing path %s ns/op exceeds bound %s\n", ns, max; exit 1 }
}'

# Disabled-telemetry overhead guard: the same contract for the rolling
# windows behind /v1/stats — a nil *telemetry.Window must stay
# allocation-free (enabled Observe too, test-asserted) and under the
# ns/op bound recorded in BENCH_telemetry.json.
go test -run TestWindowObserveAllocatesNothing -count=1 ./internal/telemetry
max_ns=$(sed -n 's/.*"disabled_max_ns_per_op": *\([0-9.]*\).*/\1/p' BENCH_telemetry.json)
bench_out=$(go test -run '^$' -bench BenchmarkWindowDisabled -benchtime 1000000x ./internal/telemetry)
echo "$bench_out"
ns=$(echo "$bench_out" | awk '/^BenchmarkWindowDisabled/ {print $3}')
awk -v ns="$ns" -v max="$max_ns" 'BEGIN {
    if (ns == "" || max == "") { print "could not read benchmark or baseline"; exit 1 }
    if (ns + 0 > max + 0) { printf "disabled-telemetry path %s ns/op exceeds bound %s\n", ns, max; exit 1 }
}'

# Disabled-flight-recorder overhead guard: with -flight negative a nil
# *flight.Recorder and *flight.Engine ride every job and log line; the
# whole disabled surface (Add/Job/ObserveJob/ObserveShed/Sweep) must stay
# allocation-free (test-asserted) and under the ns/op bound recorded in
# BENCH_flight.json.
go test -run TestFlightDisabledAllocatesNothing -count=1 ./internal/flight
max_ns=$(sed -n 's/.*"disabled_max_ns_per_op": *\([0-9.]*\).*/\1/p' BENCH_flight.json)
bench_out=$(go test -run '^$' -bench BenchmarkFlightDisabled -benchtime 1000000x ./internal/flight)
echo "$bench_out"
ns=$(echo "$bench_out" | awk '/^BenchmarkFlightDisabled/ {print $3}')
awk -v ns="$ns" -v max="$max_ns" 'BEGIN {
    if (ns == "" || max == "") { print "could not read benchmark or baseline"; exit 1 }
    if (ns + 0 > max + 0) { printf "disabled-flight path %s ns/op exceeds bound %s\n", ns, max; exit 1 }
}'

# Cluster crash-safety gate: a 3-node cluster must survive losing a node
# mid-run (every accepted job completes exactly once, fingerprint-deduped)
# and drain one gracefully (no shed, in-flight work finishes in place),
# both under the race detector. The full -race suite above already runs
# these; the explicit pass keeps the gate visible if the suite is filtered.
go test -race -run 'TestClusterKillNodeMidRun|TestClusterDrainGraceful' -count=1 ./internal/cluster

# Disabled-cluster-tracing overhead guard: an untraced submission carries
# a nil *submissionTrace through the whole gateway routing path; it must
# stay allocation-free (test-asserted) and under the ns/op bound recorded
# in BENCH_gateway.json, so cluster tracing costs nothing when off.
go test -run TestGatewayTraceDisabledAllocatesNothing -count=1 ./internal/cluster
max_ns=$(sed -n 's/.*"disabled_max_ns_per_op": *\([0-9.]*\).*/\1/p' BENCH_gateway.json)
bench_out=$(go test -run '^$' -bench BenchmarkGatewayTraceDisabled -benchtime 1000000x ./internal/cluster)
echo "$bench_out"
ns=$(echo "$bench_out" | awk '/^BenchmarkGatewayTraceDisabled/ {print $3}')
awk -v ns="$ns" -v max="$max_ns" 'BEGIN {
    if (ns == "" || max == "") { print "could not read benchmark or baseline"; exit 1 }
    if (ns + 0 > max + 0) { printf "disabled-cluster-tracing path %s ns/op exceeds bound %s\n", ns, max; exit 1 }
}'

# Cluster trace golden gate: one traced job through a 2-node cluster with
# a mid-run failover must yield a single Chrome trace whose per-process
# phase vocabulary matches the checked-in skeleton. The full -race suite
# above already runs this; the explicit pass keeps the gate visible if
# the suite is filtered. Regenerate with UPDATE_GOLDEN=1 after
# intentional span-set changes.
go test -run TestClusterTraceFailoverGolden -count=1 ./internal/cluster

# Session hot-path guards: the status snapshot behind GET
# /v1/sessions/{id} and the sweep warmer's per-submission idle detector
# both ride interactive paths; each must stay allocation-bounded
# (test-asserted) and under the ns/op bound recorded in
# BENCH_session.json.
go test -run 'TestSessionStatusAllocationBounded|TestWarmerIdleAllocationFree' -count=1 ./internal/session
max_ns=$(sed -n 's/.*"status_max_ns_per_op": *\([0-9.]*\).*/\1/p' BENCH_session.json)
bench_out=$(go test -run '^$' -bench BenchmarkSessionStatus -benchtime 1000000x ./internal/session)
echo "$bench_out"
ns=$(echo "$bench_out" | awk '/^BenchmarkSessionStatus/ {print $3}')
awk -v ns="$ns" -v max="$max_ns" 'BEGIN {
    if (ns == "" || max == "") { print "could not read benchmark or baseline"; exit 1 }
    if (ns + 0 > max + 0) { printf "session status path %s ns/op exceeds bound %s\n", ns, max; exit 1 }
}'
max_ns=$(sed -n 's/.*"warmer_idle_max_ns_per_op": *\([0-9.]*\).*/\1/p' BENCH_session.json)
bench_out=$(go test -run '^$' -bench BenchmarkWarmerIdle -benchtime 1000000x ./internal/session)
echo "$bench_out"
ns=$(echo "$bench_out" | awk '/^BenchmarkWarmerIdle/ {print $3}')
awk -v ns="$ns" -v max="$max_ns" 'BEGIN {
    if (ns == "" || max == "") { print "could not read benchmark or baseline"; exit 1 }
    if (ns + 0 > max + 0) { printf "warmer idle path %s ns/op exceeds bound %s\n", ns, max; exit 1 }
}'

# Session durability gate: a mid-run daemon crash must resume from the
# last durable checkpoint and finish bitwise-identical to an
# uninterrupted run, and a 2-node cluster must re-home a session from a
# dead owner's replicated checkpoint under one trace. The full -race
# suite above already runs these; the explicit pass keeps the gate
# visible if the suite is filtered.
go test -run 'TestSessionDurabilityAcrossRestart' -count=1 ./internal/service
go test -race -run 'TestClusterSessionFailover' -count=1 ./internal/cluster

# Ring hot-path guard: consistent-hash Lookup runs on every gateway
# submission and must stay allocation-free (test-asserted) and under the
# ns/op bound recorded in BENCH_cluster.json.
go test -run TestRingLookupAllocationFree -count=1 ./internal/cluster
max_ns=$(sed -n 's/.*"lookup_max_ns_per_op": *\([0-9.]*\).*/\1/p' BENCH_cluster.json)
bench_out=$(go test -run '^$' -bench BenchmarkRingLookup -benchtime 1000000x ./internal/cluster)
echo "$bench_out"
ns=$(echo "$bench_out" | awk '/^BenchmarkRingLookup/ {print $3}')
awk -v ns="$ns" -v max="$max_ns" 'BEGIN {
    if (ns == "" || max == "") { print "could not read benchmark or baseline"; exit 1 }
    if (ns + 0 > max + 0) { printf "ring lookup %s ns/op exceeds bound %s\n", ns, max; exit 1 }
}'
