package advect_test

import (
	"fmt"

	"repro"
)

// Example integrates the paper's test case with the baseline
// implementation and checks the result against the analytic solution.
func Example() {
	p := advect.NewProblem(24, 12)
	res, err := advect.Run(advect.SingleTask, p, advect.Options{Threads: 2, Verify: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("mass conserved: %v\n", res.MassDrift < 1e-10)
	fmt.Printf("error below 10%% of peak: %v\n", res.Norms.LInf < 0.10)
	// Output:
	// mass conserved: true
	// error below 10% of peak: true
}

// ExampleRun_hybridOverlap runs the paper's best implementation (§IV-I)
// and shows that it lands on exactly the same answer as the baseline.
func ExampleRun_hybridOverlap() {
	p := advect.NewProblem(16, 4)
	base, _ := advect.Run(advect.SingleTask, p, advect.Options{})
	hyb, err := advect.Run(advect.HybridOverlap, p, advect.Options{
		Tasks: 2, Threads: 2, BoxThickness: 1, BlockX: 8, BlockY: 4,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	maxDiff := 0.0
	for k := 0; k < 16; k++ {
		for j := 0; j < 16; j++ {
			for i := 0; i < 16; i++ {
				d := base.Final.At(i, j, k) - hyb.Final.At(i, j, k)
				if d < 0 {
					d = -d
				}
				if d > maxDiff {
					maxDiff = d
				}
			}
		}
	}
	fmt.Println("agrees with the baseline to roundoff:", maxDiff < 1e-12)
	// Output:
	// agrees with the baseline to roundoff: true
}

// ExamplePredict estimates full-scale performance on one of the paper's
// machines — here the Section V-E headline: the full-overlap hybrid
// implementation on one Yona node approaches GPU-resident throughput.
func ExamplePredict() {
	yona, _ := advect.MachineByName("Yona")
	resident, _ := advect.Predict(advect.PredictConfig{
		M: yona, Kind: advect.GPUResident, BlockX: 32, BlockY: 13,
	})
	hybrid, _ := advect.Predict(advect.PredictConfig{
		M: yona, Kind: advect.HybridOverlap, Cores: 12, Threads: 12,
		BoxThickness: 1, BlockX: 32, BlockY: 8,
	})
	fmt.Printf("hybrid overlap recovers >90%% of GPU-resident: %v\n",
		hybrid.GF > 0.9*resident.GF)
	// Output:
	// hybrid overlap recovers >90% of GPU-resident: true
}
