package advect_test

// Smoke tests for the runnable examples: each must build and exit cleanly.
// This keeps the documentation executable.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("only %d examples", len(entries))
	}
	// The service walkthrough must be present: it is the executable
	// documentation for cmd/advectd (boot, submit, cache hit, drain).
	hasService := false
	for _, e := range entries {
		if e.IsDir() && e.Name() == "service" {
			hasService = true
		}
	}
	if !hasService {
		t.Fatal("examples/service missing")
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(t.TempDir(), name)
			build := exec.Command("go", "build", "-o", bin, "./"+filepath.Join("examples", name))
			if out, err := build.CombinedOutput(); err != nil {
				t.Skipf("cannot build (no toolchain?): %v\n%s", err, out)
			}
			cmd := exec.Command(bin)
			done := make(chan error, 1)
			var out strings.Builder
			cmd.Stdout = &out
			cmd.Stderr = &out
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			go func() { done <- cmd.Wait() }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("%s failed: %v\n%s", name, err, out.String())
				}
			case <-time.After(2 * time.Minute):
				cmd.Process.Kill()
				t.Fatalf("%s timed out", name)
			}
			if out.Len() == 0 {
				t.Fatalf("%s produced no output", name)
			}
		})
	}
}
